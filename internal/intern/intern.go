// Package intern provides the dense (attribute, value) id space the hot
// mine and re-mine paths index their tables by, replacing the string keys
// (gr.Key / gr.RHSKey) that used to drive map-heavy counting — the GC
// hotspot profile DESIGN.md §7 documents.
//
// Two layers:
//
//   - Layout: the schema-static pair id space. Every non-null (attribute,
//     value) pair of a schema gets a dense id by pure arithmetic — node
//     attributes first, edge attributes after — so pair ids need no map, no
//     allocation, and are trivially stable under every store mutation
//     (AppendEdges, deletions, rebuild-compaction): they depend on nothing
//     but the immutable schema.
//
//   - Dict: a trie over pair ids interning condition paths (descriptors)
//     and whole GRs into dense ids. Ids are handed out in first-seen order
//     and NEVER reused or remapped — the intern property tests pin this
//     across arbitrary store mutation sequences — so a slice indexed by
//     DescID or GRID stays valid for the dictionary's lifetime. A Dict is
//     not safe for concurrent use; parallel mine workers each own a private
//     Dict (pair ids still agree across them, desc/GR ids are worker-local).
package intern

import (
	"grminer/internal/gr"
	"grminer/internal/graph"
)

// PairID is a dense id for one non-null (attribute, value) pair. Node and
// edge attributes share one id space (node pairs first).
type PairID int32

// DescID is a dense id for a condition path (a sorted descriptor). The empty
// descriptor is always id 0.
type DescID int32

// GRID is a dense id for a whole GR (its L, W, R descriptor triple).
type GRID int32

// Layout is the schema-static pair id space. It is immutable after New and
// safe for concurrent use.
type Layout struct {
	nodeOff []int32 // per node attribute: id of (attr, 1)
	edgeOff []int32 // per edge attribute: id of (attr, 1)
	pairs   int32
}

// NewLayout builds the pair id space for a schema.
func NewLayout(s *graph.Schema) *Layout {
	l := &Layout{
		nodeOff: make([]int32, len(s.Node)),
		edgeOff: make([]int32, len(s.Edge)),
	}
	var off int32
	for a := range s.Node {
		l.nodeOff[a] = off
		off += int32(s.Node[a].Domain)
	}
	for a := range s.Edge {
		l.edgeOff[a] = off
		off += int32(s.Edge[a].Domain)
	}
	l.pairs = off
	return l
}

// NumPairs returns the total pair id space size.
func (l *Layout) NumPairs() int { return int(l.pairs) }

// NodePair returns the dense id of node-attribute pair (attr, val); val must
// be non-null and within attr's domain (the graph layer validates stored
// values, so no range check is repeated here).
func (l *Layout) NodePair(attr int, val graph.Value) PairID {
	return PairID(l.nodeOff[attr] + int32(val) - 1)
}

// EdgePair is NodePair for edge attributes.
func (l *Layout) EdgePair(attr int, val graph.Value) PairID {
	return PairID(l.edgeOff[attr] + int32(val) - 1)
}

// Dict interns descriptors and GRs over a Layout into dense ids. Not safe
// for concurrent use.
type Dict struct {
	layout *Layout
	// trie holds the descriptor paths: key = parent DescID << 32 | PairID,
	// value = child DescID. The empty descriptor is the root, id 0.
	trie  map[uint64]DescID
	nDesc DescID
	// grs interns (L, W, R) desc id triples.
	grs map[[3]DescID]GRID
	nGR GRID
}

// NewDict returns an empty dictionary over layout.
func NewDict(layout *Layout) *Dict {
	return &Dict{
		layout: layout,
		trie:   make(map[uint64]DescID),
		nDesc:  1, // 0 is the empty descriptor
		grs:    make(map[[3]DescID]GRID),
	}
}

// Layout returns the dictionary's pair id space.
func (d *Dict) Layout() *Layout { return d.layout }

// NumDescs returns the descriptor id space bound: every DescID handed out so
// far is < NumDescs(). Slice tables indexed by DescID grow to this.
func (d *Dict) NumDescs() int { return int(d.nDesc) }

// NumGRs is NumDescs for GR ids.
func (d *Dict) NumGRs() int { return int(d.nGR) }

// step walks (or creates) one trie edge.
func (d *Dict) step(parent DescID, p PairID) DescID {
	key := uint64(uint32(parent))<<32 | uint64(uint32(p))
	if id, ok := d.trie[key]; ok {
		return id
	}
	id := d.nDesc
	d.nDesc++
	d.trie[key] = id
	return id
}

// NodeDesc interns a node descriptor (an L or R side; both share the node
// pair space, so equal descriptors get equal ids regardless of side).
func (d *Dict) NodeDesc(desc gr.Descriptor) DescID {
	id := DescID(0)
	for _, c := range desc {
		id = d.step(id, d.layout.NodePair(c.Attr, c.Val))
	}
	return id
}

// EdgeDesc interns an edge descriptor (a W side).
func (d *Dict) EdgeDesc(desc gr.Descriptor) DescID {
	id := DescID(0)
	for _, c := range desc {
		id = d.step(id, d.layout.EdgePair(c.Attr, c.Val))
	}
	return id
}

// GR interns a whole GR from its descriptor triple.
func (d *Dict) GR(g gr.GR) GRID {
	return d.GRFrom(d.NodeDesc(g.L), d.EdgeDesc(g.W), d.NodeDesc(g.R))
}

// GRFrom interns a GR from already-interned descriptor ids (callers that
// intern the sides anyway avoid re-walking the conditions).
func (d *Dict) GRFrom(l, w, r DescID) GRID {
	key := [3]DescID{l, w, r}
	if id, ok := d.grs[key]; ok {
		return id
	}
	id := d.nGR
	d.nGR++
	d.grs[key] = id
	return id
}

// DictState is a Dict's serializable interning state: the trie edges and GR
// triples with their assigned ids. The Layout is deliberately absent — pair
// ids are pure schema arithmetic, so the restoring side rebuilds the layout
// from its own schema and FromState grafts the interned ids back on. A
// restored Dict hands out the exact same ids for the exact same inputs, which
// is what lets slice tables indexed by DescID/GRID survive a worker
// checkpoint round trip (DESIGN.md §9).
type DictState struct {
	Trie  map[uint64]DescID
	NDesc DescID
	GRs   map[[3]DescID]GRID
	NGR   GRID
}

// State snapshots the dictionary's interning state. The returned maps alias
// the live dictionary; callers serialize them (gob copies) rather than
// mutating them.
func (d *Dict) State() DictState {
	return DictState{Trie: d.trie, NDesc: d.nDesc, GRs: d.grs, NGR: d.nGR}
}

// FromState rebuilds a dictionary over layout with st's id assignments.
// Nil maps (an empty dictionary serialized through gob) restore as empty.
func FromState(layout *Layout, st DictState) *Dict {
	d := NewDict(layout)
	if st.Trie != nil {
		d.trie = st.Trie
	}
	if st.GRs != nil {
		d.grs = st.GRs
	}
	if st.NDesc > d.nDesc {
		d.nDesc = st.NDesc
	}
	d.nGR = st.NGR
	return d
}
