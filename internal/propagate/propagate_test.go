package propagate

import (
	"math"
	"math/rand"
	"testing"

	"grminer/internal/datagen"
	"grminer/internal/graph"
)

// classGraph plants strong class structure: classes link within themselves
// (diagonal) and class 1 links to class 2 (secondary bond). truth holds the
// real class of every node; the graph itself has a fraction hidden (null).
func classGraph(seed int64, hideFrac float64) (*graph.Graph, []graph.Value, []bool) {
	r := rand.New(rand.NewSource(seed))
	schema, err := graph.NewSchema(
		[]graph.Attribute{{Name: "C", Domain: 3, Homophily: true}},
		nil,
	)
	if err != nil {
		panic(err)
	}
	const n = 300
	g := graph.MustNew(schema, n)
	truth := make([]graph.Value, n)
	hidden := make([]bool, n)
	byClass := make([][]int, 4)
	for v := 0; v < n; v++ {
		cls := graph.Value(v%3 + 1)
		truth[v] = cls
		byClass[cls] = append(byClass[cls], v)
	}
	for v := 0; v < n; v++ {
		if r.Float64() < hideFrac {
			hidden[v] = true
			continue
		}
		g.SetNodeValues(v, truth[v])
	}
	pick := func(cls graph.Value) int {
		b := byClass[cls]
		return b[r.Intn(len(b))]
	}
	for e := 0; e < 3000; e++ {
		src := r.Intn(n)
		var dst int
		roll := r.Float64()
		switch {
		case roll < 0.6:
			dst = pick(truth[src]) // homophily
		case roll < 0.85 && truth[src] == 1:
			dst = pick(2) // secondary bond 1 -> 2
		default:
			dst = r.Intn(n)
		}
		if dst == src {
			dst = (dst + 1) % n
		}
		g.AddEdge(src, dst)
	}
	return g, truth, hidden
}

func TestInfluenceMatrixShape(t *testing.T) {
	g, _, _ := classGraph(1, 0)
	m, err := InfluenceMatrix(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || len(m[0]) != 3 {
		t.Fatalf("matrix %dx%d", len(m), len(m[0]))
	}
	// Diagonal (homophily) must dominate off-diagonal for class 3 (which
	// has no planted secondary bond).
	if m[2][2] <= m[2][0] || m[2][2] <= m[2][1] {
		t.Errorf("class-3 diagonal %v not dominant: %v", m[2][2], m[2])
	}
	// The planted 1 -> 2 secondary bond must be the strongest off-diagonal
	// entry of row 1.
	if m[0][1] <= m[0][2] {
		t.Errorf("secondary bond not captured: row %v", m[0])
	}
	if _, err := InfluenceMatrix(g, 9); err == nil {
		t.Error("bad attribute accepted")
	}
}

func TestCenter(t *testing.T) {
	m := [][]float64{{1, 2, 3}, {0, 0, 0}}
	c := Center(m)
	for i, row := range c {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("row %d not centered: %v", i, row)
		}
	}
	if m[0][0] != 1 {
		t.Error("Center mutated input")
	}
}

// The headline property: propagation with the GR-derived influence matrix
// recovers hidden classes far better than chance on a structured graph.
func TestPropagationRecoversClasses(t *testing.T) {
	g, truth, hidden := classGraph(7, 0.3)
	m, err := InfluenceMatrix(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, m, Config{Attr: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Logf("did not converge in %d iterations (ok if accuracy holds)", res.Iterations)
	}
	acc := res.Accuracy(truth, hidden)
	if acc < 0.6 { // chance = 1/3
		t.Errorf("hidden-node accuracy %.3f, want ≥ 0.6", acc)
	}
	// Labeled nodes must keep their class.
	for v := 0; v < g.NumNodes(); v++ {
		if hidden[v] {
			continue
		}
		if res.Predict(v) != truth[v] {
			t.Fatalf("labeled node %d flipped to %d (truth %d)", v, res.Predict(v), truth[v])
		}
	}
}

func TestRunValidation(t *testing.T) {
	g, _, _ := classGraph(1, 0)
	good, _ := InfluenceMatrix(g, 0)
	if _, err := Run(g, good, Config{Attr: 5}); err == nil {
		t.Error("bad attribute accepted")
	}
	if _, err := Run(g, [][]float64{{1}}, Config{Attr: 0}); err == nil {
		t.Error("wrong matrix size accepted")
	}
	if _, err := Run(g, [][]float64{{1, 2, 3}, {1, 2}, {1, 2, 3}}, Config{Attr: 0}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Run(g, good, Config{Attr: 0, Labels: []bool{true}}); err == nil {
		t.Error("wrong labels length accepted")
	}
}

func TestInfluenceFromGRs(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 2000
	cfg.Pairs = 3000
	g := datagen.DBLP(cfg)
	direct, err := InfluenceMatrix(g, datagen.DBLPArea)
	if err != nil {
		t.Fatal(err)
	}
	// The DB -> DM secondary bond must appear off-diagonal.
	if direct[datagen.AreaDB-1][datagen.AreaDM-1] <= direct[datagen.AreaDB-1][datagen.AreaIR-1] {
		t.Errorf("DB row lacks the DM bond: %v", direct[datagen.AreaDB-1])
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	r := &Result{Beliefs: [][]float64{{0.5, 0.1}}}
	if r.Predict(0) != 1 {
		t.Errorf("Predict = %d", r.Predict(0))
	}
	if acc := r.Accuracy([]graph.Value{0}, nil); acc != 0 {
		t.Errorf("accuracy over no evaluable nodes = %v", acc)
	}
}
