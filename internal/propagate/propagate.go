// Package propagate applies mined group relationships as the influence
// matrix of a class-propagation algorithm, the application Section II of
// the paper singles out: "[18] focuses on class propagation in a social
// network using a given influence matrix. Our GRs can serve as the assumed
// influence matrix."
//
// The propagation scheme is a linearized belief propagation in the style of
// Gatterbauer et al. (VLDB 2015, the paper's reference [18]): each node
// holds a belief vector over the classes of one node attribute; labeled
// nodes are clamped to their class; beliefs flow over edges modulated by a
// residual (centered) class-compatibility matrix. GRs supply that matrix:
// entry (i, j) is the non-homophily-aware tendency of class-i sources to
// link to class-j destinations.
package propagate

import (
	"fmt"
	"math"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// InfluenceMatrix derives the class-compatibility matrix for one node
// attribute from the data: entry [i][j] (1-based classes mapped to 0-based
// rows) is nhp((attr:i) -> (attr:j)) when the attribute is homophilous —
// capturing both the primary bond (diagonal) and the secondary bonds the
// paper mines — and plain confidence otherwise. Rows with no outgoing
// evidence are uniform.
func InfluenceMatrix(g *graph.Graph, attr int) ([][]float64, error) {
	schema := g.Schema()
	if attr < 0 || attr >= len(schema.Node) {
		return nil, fmt.Errorf("propagate: node attribute %d out of range", attr)
	}
	k := schema.Node[attr].Domain
	m := make([][]float64, k)
	for i := 1; i <= k; i++ {
		row := make([]float64, k)
		rowSum := 0.0
		for j := 1; j <= k; j++ {
			r := gr.GR{
				L: gr.D(attr, i),
				R: gr.D(attr, j),
			}
			c := metrics.Eval(g, r)
			var v float64
			if i == j {
				// The homophily effect itself: use confidence (nhp of a
				// trivial GR is undefined by design).
				v = metrics.Conf(c)
			} else {
				v = metrics.Nhp(c)
			}
			row[j-1] = v
			rowSum += v
		}
		if rowSum == 0 {
			for j := range row {
				row[j] = 1 / float64(k)
			}
		}
		m[i-1] = row
	}
	return m, nil
}

// InfluenceFromGRs builds the matrix from an explicit mined GR list instead
// of fresh queries: each GR of the form (attr:i) -> (attr:j) contributes
// its score. Missing entries fall back to zero; rows are left uncentered.
func InfluenceFromGRs(schema *graph.Schema, attr int, mined []gr.Scored) ([][]float64, error) {
	if attr < 0 || attr >= len(schema.Node) {
		return nil, fmt.Errorf("propagate: node attribute %d out of range", attr)
	}
	k := schema.Node[attr].Domain
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
	}
	for _, s := range mined {
		lv, okL := s.GR.L.Get(attr)
		rv, okR := s.GR.R.Get(attr)
		if !okL || !okR || len(s.GR.L) != 1 || len(s.GR.R) != 1 || len(s.GR.W) != 0 {
			continue // only pure (attr:i) -> (attr:j) patterns apply
		}
		if s.Score > m[lv-1][rv-1] {
			m[lv-1][rv-1] = s.Score
		}
	}
	return m, nil
}

// Center subtracts each row's mean, producing the residual compatibility
// matrix linearized belief propagation requires (so "no information" is 0).
func Center(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		if len(row) > 0 {
			mean /= float64(len(row))
		}
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v - mean
		}
		out[i] = r
	}
	return out
}

// Config controls a propagation run.
type Config struct {
	// Attr is the class node attribute.
	Attr int
	// Labels marks the nodes whose class is known (clamped); nil means
	// every node with a non-null value is labeled.
	Labels []bool
	// Epsilon scales the neighbor influence per step (the LinBP damping);
	// defaults to 0.05.
	Epsilon float64
	// MaxIter bounds the iterations; defaults to 100.
	MaxIter int
	// Tol is the L1 convergence threshold per node; defaults to 1e-6.
	Tol float64
}

// Result holds the propagation output.
type Result struct {
	// Beliefs[n] is node n's residual belief vector over classes.
	Beliefs [][]float64
	// Iterations is the number of sweeps performed.
	Iterations int
	// Converged reports whether the tolerance was met before MaxIter.
	Converged bool
	attr      int
}

// Run propagates class beliefs over g using the centered influence matrix.
// Labeled nodes keep a clamped prior (+1 on their class, residual-centered);
// unlabeled nodes start neutral and accumulate neighbor influence along
// both edge directions (influence flows source→destination through H and
// destination→source through Hᵀ).
func Run(g *graph.Graph, influence [][]float64, cfg Config) (*Result, error) {
	schema := g.Schema()
	if cfg.Attr < 0 || cfg.Attr >= len(schema.Node) {
		return nil, fmt.Errorf("propagate: node attribute %d out of range", cfg.Attr)
	}
	k := schema.Node[cfg.Attr].Domain
	if len(influence) != k {
		return nil, fmt.Errorf("propagate: influence matrix is %dx?, want %dx%d", len(influence), k, k)
	}
	for i, row := range influence {
		if len(row) != k {
			return nil, fmt.Errorf("propagate: influence row %d has %d entries, want %d", i, len(row), k)
		}
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.05
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-6
	}
	n := g.NumNodes()
	labeled := cfg.Labels
	if labeled == nil {
		labeled = make([]bool, n)
		for v := 0; v < n; v++ {
			labeled[v] = g.NodeValue(v, cfg.Attr) != graph.Null
		}
	} else if len(labeled) != n {
		return nil, fmt.Errorf("propagate: labels length %d, want %d", len(labeled), n)
	}

	h := Center(influence)
	prior := make([][]float64, n)
	for v := 0; v < n; v++ {
		p := make([]float64, k)
		if labeled[v] {
			cls := g.NodeValue(v, cfg.Attr)
			if cls != graph.Null {
				for j := range p {
					p[j] = -1 / float64(k)
				}
				p[cls-1] += 1
			}
		}
		prior[v] = p
	}

	beliefs := make([][]float64, n)
	next := make([][]float64, n)
	for v := 0; v < n; v++ {
		beliefs[v] = append([]float64(nil), prior[v]...)
		next[v] = make([]float64, k)
	}

	res := &Result{attr: cfg.Attr}
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		for v := 0; v < n; v++ {
			copy(next[v], prior[v])
		}
		for e := 0; e < g.NumEdges(); e++ {
			if !g.EdgeAlive(e) {
				continue
			}
			src, dst := g.Src(e), g.Dst(e)
			bs, bd := beliefs[src], beliefs[dst]
			// Forward: a source believed to be class i pushes H[i][j]
			// toward the destination being class j; backward symmetric.
			for i := 0; i < k; i++ {
				if bs[i] != 0 {
					w := cfg.Epsilon * bs[i]
					for j := 0; j < k; j++ {
						next[dst][j] += w * h[i][j]
					}
				}
				if bd[i] != 0 {
					w := cfg.Epsilon * bd[i]
					for j := 0; j < k; j++ {
						next[src][j] += w * h[j][i]
					}
				}
			}
		}
		delta := 0.0
		for v := 0; v < n; v++ {
			for j := 0; j < k; j++ {
				delta += math.Abs(next[v][j] - beliefs[v][j])
			}
			beliefs[v], next[v] = next[v], beliefs[v]
		}
		res.Iterations = iter
		if delta <= cfg.Tol*float64(n) {
			res.Converged = true
			break
		}
	}
	res.Beliefs = beliefs
	return res, nil
}

// Predict returns the argmax class (1-based attribute value) for node n;
// ties break toward the smaller class id.
func (r *Result) Predict(n int) graph.Value {
	best, bestV := 0, math.Inf(-1)
	for j, v := range r.Beliefs[n] {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return graph.Value(best + 1)
}

// Accuracy scores predictions on the nodes selected by eval (typically the
// held-out unlabeled nodes) against truth values.
func (r *Result) Accuracy(truth []graph.Value, eval []bool) float64 {
	correct, total := 0, 0
	for n := range truth {
		if n >= len(r.Beliefs) || (eval != nil && !eval[n]) || truth[n] == graph.Null {
			continue
		}
		total++
		if r.Predict(n) == truth[n] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
