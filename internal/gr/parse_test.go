package gr

import (
	"testing"

	"grminer/internal/graph"
)

func parseSchema(t *testing.T) *graph.Schema {
	t.Helper()
	s, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "SEX", Domain: 2, Labels: []string{"∅", "F", "M"}},
			{Name: "EDU", Domain: 3, Homophily: true, Labels: []string{"∅", "HighSchool", "College", "Grad"}},
		},
		[]graph.Attribute{{Name: "S", Domain: 3, Labels: []string{"∅", "occasional", "moderate", "often"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseGRRoundTrip(t *testing.T) {
	s := parseSchema(t)
	cases := []GR{
		{L: D(0, 1, 1, 3), R: D(0, 2, 1, 2)},
		{L: D(1, 1), W: D(0, 3), R: D(1, 2)},
		{R: D(0, 2)},
		{L: D(0, 1), W: D(0, 1), R: D(0, 2, 1, 1)},
	}
	for _, want := range cases {
		text := want.Format(s)
		got, err := ParseGR(s, text)
		if err != nil {
			t.Fatalf("ParseGR(%q): %v", text, err)
		}
		if got.Key() != want.Key() {
			t.Errorf("round trip %q: got %s want %s", text, got.Key(), want.Key())
		}
	}
}

func TestParseGRNumericValues(t *testing.T) {
	s := parseSchema(t)
	g, err := ParseGR(s, "(EDU:2) -> (EDU:3)")
	if err != nil {
		t.Fatalf("numeric parse: %v", err)
	}
	if v, _ := g.L.Get(1); v != 2 {
		t.Errorf("numeric LHS value = %d", v)
	}
}

func TestParseGRWhitespace(t *testing.T) {
	s := parseSchema(t)
	g, err := ParseGR(s, "  ( SEX:F , EDU:Grad )  ->  ( SEX:M )  ")
	if err != nil {
		t.Fatalf("whitespace parse: %v", err)
	}
	if len(g.L) != 2 || len(g.R) != 1 {
		t.Errorf("parsed %v", g)
	}
}

func TestParseGRErrors(t *testing.T) {
	s := parseSchema(t)
	bad := []string{
		"",                             // no arrow
		"(SEX:F) (SEX:M)",              // no arrow
		"(SEX:F) -> ()",                // empty RHS
		"(SEX:X) -> (SEX:M)",           // unknown label
		"(NOPE:1) -> (SEX:M)",          // unknown attribute
		"(SEX:F -> (SEX:M)",            // unbalanced parens
		"(SEX:F) -[S:never]-> (SEX:M)", // unknown edge label
		"(SEX:F) -[X:1]-> (SEX:M)",     // unknown edge attribute
		"(SEX:F, SEX:M) -> (EDU:Grad)", // duplicate attribute
		"(SEX:0) -> (SEX:M)",           // null value
		"(SEX) -> (SEX:M)",             // missing colon
		"(SEX:9) -> (SEX:M)",           // out of domain
	}
	for _, text := range bad {
		if _, err := ParseGR(s, text); err == nil {
			t.Errorf("ParseGR accepted %q", text)
		}
	}
}
