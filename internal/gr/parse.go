package gr

import (
	"fmt"
	"strings"

	"grminer/internal/graph"
)

// ParseGR parses the textual GR form produced by Format:
//
//	(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)
//	(A:DB) -[S:often]-> (A:DM)
//	() -> (G:Female)
//
// Attribute names and value labels are resolved against the schema; bare
// integers are accepted as values for unlabeled attributes.
func ParseGR(s *graph.Schema, text string) (GR, error) {
	text = strings.TrimSpace(text)
	arrow := strings.Index(text, "->")
	if arrow < 0 {
		return GR{}, fmt.Errorf("gr: missing '->' in %q", text)
	}
	lhsText := strings.TrimSpace(text[:arrow])
	rhsText := strings.TrimSpace(text[arrow+2:])

	// An edge descriptor rides on the arrow as "-[...]->", so the LHS text
	// ends with "-[...]" when present.
	var wText string
	if strings.HasSuffix(lhsText, "]") {
		open := strings.LastIndex(lhsText, "-[")
		if open < 0 {
			return GR{}, fmt.Errorf("gr: unmatched ']' in %q", text)
		}
		wText = lhsText[open+2 : len(lhsText)-1]
		lhsText = strings.TrimSpace(lhsText[:open])
	}

	l, err := ParseDescriptor(s.Node, lhsText)
	if err != nil {
		return GR{}, fmt.Errorf("gr: LHS: %w", err)
	}
	r, err := ParseDescriptor(s.Node, rhsText)
	if err != nil {
		return GR{}, fmt.Errorf("gr: RHS: %w", err)
	}
	var w Descriptor
	if wText != "" {
		w, err = ParseDescriptor(s.Edge, "("+wText+")")
		if err != nil {
			return GR{}, fmt.Errorf("gr: edge descriptor: %w", err)
		}
	}
	g := GR{L: l, W: w, R: r}
	if err := g.Valid(s); err != nil {
		return GR{}, err
	}
	return g, nil
}

// ParseDescriptor parses "(Name:Label, Name:Label)" (or "()" for the empty
// descriptor) against the given attribute set.
func ParseDescriptor(attrs []graph.Attribute, text string) (Descriptor, error) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "(") || !strings.HasSuffix(text, ")") {
		return nil, fmt.Errorf("descriptor %q must be parenthesised", text)
	}
	inner := strings.TrimSpace(text[1 : len(text)-1])
	if inner == "" {
		return nil, nil
	}
	var d Descriptor
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		colon := strings.Index(part, ":")
		if colon < 0 {
			return nil, fmt.Errorf("condition %q missing ':'", part)
		}
		name := strings.TrimSpace(part[:colon])
		label := strings.TrimSpace(part[colon+1:])
		attr := -1
		for i := range attrs {
			if attrs[i].Name == name {
				attr = i
				break
			}
		}
		if attr < 0 {
			return nil, fmt.Errorf("unknown attribute %q", name)
		}
		v, ok := attrs[attr].ValueOf(label)
		if !ok || v == graph.Null {
			return nil, fmt.Errorf("unknown value %q for attribute %s", label, name)
		}
		if d.Has(attr) {
			return nil, fmt.Errorf("duplicate attribute %q", name)
		}
		d = d.With(attr, v)
	}
	return d, nil
}
