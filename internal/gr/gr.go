// Package gr models group relationships (GRs), the pattern language of
// "Mining Social Ties Beyond Homophily": l -w-> r where l and r are node
// descriptors over edge sources and destinations and w is an edge descriptor
// (Definition 1). It provides the homophily machinery of Section III-B:
// the β attribute set, the homophily effect l -w-> l[β], triviality, and the
// generality order and ranking used by Definition 5.
package gr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"grminer/internal/graph"
)

// Cond is one (attribute : value) pair of a descriptor. Attr indexes the
// schema's node or edge attribute list depending on where the condition is
// used; Val is never the null value in a well-formed descriptor.
//
// grlint:wire v1
type Cond struct {
	Attr int
	Val  graph.Value
}

// Descriptor is a set of conditions, sorted by attribute index with no
// duplicate attributes. The zero value is the empty descriptor.
type Descriptor []Cond

// D builds a descriptor from (attr, val, attr, val, ...) pairs; it panics on
// malformed input and is intended for fixtures and tests.
func D(pairs ...int) Descriptor {
	if len(pairs)%2 != 0 {
		panic("gr: D requires attr/value pairs")
	}
	var d Descriptor
	for i := 0; i < len(pairs); i += 2 {
		d = d.With(pairs[i], graph.Value(pairs[i+1]))
	}
	return d
}

// Get returns the value for attr and whether attr is constrained.
func (d Descriptor) Get(attr int) (graph.Value, bool) {
	i := sort.Search(len(d), func(i int) bool { return d[i].Attr >= attr })
	if i < len(d) && d[i].Attr == attr {
		return d[i].Val, true
	}
	return graph.Null, false
}

// Has reports whether attr is constrained.
func (d Descriptor) Has(attr int) bool {
	_, ok := d.Get(attr)
	return ok
}

// With returns a copy of d with (attr : val) added or replaced, keeping the
// sorted invariant. d itself is never mutated.
func (d Descriptor) With(attr int, val graph.Value) Descriptor {
	i := sort.Search(len(d), func(i int) bool { return d[i].Attr >= attr })
	out := make(Descriptor, 0, len(d)+1)
	out = append(out, d[:i]...)
	if i < len(d) && d[i].Attr == attr {
		out = append(out, Cond{attr, val})
		out = append(out, d[i+1:]...)
		return out
	}
	out = append(out, Cond{attr, val})
	out = append(out, d[i:]...)
	return out
}

// Without returns a copy of d with attr removed (no-op if absent).
func (d Descriptor) Without(attr int) Descriptor {
	out := make(Descriptor, 0, len(d))
	for _, c := range d {
		if c.Attr != attr {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns an independent copy.
func (d Descriptor) Clone() Descriptor {
	return append(Descriptor(nil), d...)
}

// SubsetOf reports whether every condition of d appears in other with the
// same value.
func (d Descriptor) SubsetOf(other Descriptor) bool {
	j := 0
	for _, c := range d {
		for j < len(other) && other[j].Attr < c.Attr {
			j++
		}
		if j >= len(other) || other[j].Attr != c.Attr || other[j].Val != c.Val {
			return false
		}
	}
	return true
}

// Equal reports descriptor equality.
func (d Descriptor) Equal(other Descriptor) bool {
	if len(d) != len(other) {
		return false
	}
	for i := range d {
		if d[i] != other[i] {
			return false
		}
	}
	return true
}

// Valid checks sortedness, uniqueness, non-null values and domain bounds
// against the given attribute set.
func (d Descriptor) Valid(attrs []graph.Attribute) error {
	for i, c := range d {
		if i > 0 && d[i-1].Attr >= c.Attr {
			return fmt.Errorf("gr: descriptor not sorted/unique at %d", i)
		}
		if c.Attr < 0 || c.Attr >= len(attrs) {
			return fmt.Errorf("gr: attribute %d out of range", c.Attr)
		}
		if c.Val == graph.Null {
			return fmt.Errorf("gr: null value for attribute %s", attrs[c.Attr].Name)
		}
		if int(c.Val) > attrs[c.Attr].Domain {
			return fmt.Errorf("gr: value %d out of domain of %s", c.Val, attrs[c.Attr].Name)
		}
	}
	return nil
}

// format renders the descriptor with schema labels, e.g. "(SEX:F, EDU:Grad)".
func (d Descriptor) format(attrs []graph.Attribute) string {
	if len(d) == 0 {
		return "()"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		if c.Attr >= 0 && c.Attr < len(attrs) {
			a := &attrs[c.Attr]
			parts[i] = fmt.Sprintf("%s:%s", a.Name, a.Label(c.Val))
		} else {
			parts[i] = fmt.Sprintf("?%d:%d", c.Attr, c.Val)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// GR is a group relationship l -w-> r (Definition 1). L and R are node
// descriptors, W an edge descriptor.
//
// grlint:wire v1
type GR struct {
	L Descriptor
	W Descriptor
	R Descriptor
}

// Clone returns a deep copy.
func (g GR) Clone() GR {
	return GR{L: g.L.Clone(), W: g.W.Clone(), R: g.R.Clone()}
}

// Valid checks all three descriptors against the schema and that the RHS is
// non-empty (a GR must assert something about destinations).
func (g GR) Valid(s *graph.Schema) error {
	if len(g.R) == 0 {
		return fmt.Errorf("gr: empty RHS")
	}
	if err := g.L.Valid(s.Node); err != nil {
		return fmt.Errorf("gr: LHS: %w", err)
	}
	if err := g.W.Valid(s.Edge); err != nil {
		return fmt.Errorf("gr: W: %w", err)
	}
	if err := g.R.Valid(s.Node); err != nil {
		return fmt.Errorf("gr: RHS: %w", err)
	}
	return nil
}

// Beta returns β (Equation 4): the homophily attributes constrained on both
// sides with different values. The result is sorted by attribute index.
func (g GR) Beta(s *graph.Schema) []int {
	var beta []int
	for _, rc := range g.R {
		if !s.Node[rc.Attr].Homophily {
			continue
		}
		if lv, ok := g.L.Get(rc.Attr); ok && lv != rc.Val {
			beta = append(beta, rc.Attr)
		}
	}
	return beta
}

// HomophilyEffect returns the homophily-effect GR l -w-> l[β] (Equation 5)
// and whether β is non-empty. When β = ∅ the first result is the zero GR.
func (g GR) HomophilyEffect(s *graph.Schema) (GR, bool) {
	beta := g.Beta(s)
	if len(beta) == 0 {
		return GR{}, false
	}
	var r Descriptor
	for _, a := range beta {
		lv, _ := g.L.Get(a)
		r = r.With(a, lv)
	}
	return GR{L: g.L.Clone(), W: g.W.Clone(), R: r}, true
}

// Trivial reports whether the GR is trivial (Section III-B): every value in
// r is from a homophily attribute and appears in l with the same value. A
// trivial GR is fully expected from the homophily principle.
func (g GR) Trivial(s *graph.Schema) bool {
	if len(g.R) == 0 {
		return false
	}
	for _, rc := range g.R {
		if !s.Node[rc.Attr].Homophily {
			return false
		}
		lv, ok := g.L.Get(rc.Attr)
		if !ok || lv != rc.Val {
			return false
		}
	}
	return true
}

// MoreGeneral reports whether a is more general than b (Section III-C):
// a.L ⊆ b.L, a.W ⊆ b.W and a.R = b.R. A GR is more general than itself.
func MoreGeneral(a, b GR) bool {
	return a.L.SubsetOf(b.L) && a.W.SubsetOf(b.W) && a.R.Equal(b.R)
}

// StrictlyMoreGeneral is MoreGeneral excluding equality.
func StrictlyMoreGeneral(a, b GR) bool {
	if !MoreGeneral(a, b) {
		return false
	}
	return len(a.L) < len(b.L) || len(a.W) < len(b.W)
}

// Key returns a canonical, schema-independent encoding used for maps and for
// the deterministic "alphabetical" tie-break of Definition 5.
func (g GR) Key() string {
	// Hand-rolled integer formatting: Key sits on the hot path of every
	// incremental merge (sorted once per batch over the whole tracked pool)
	// and fmt-based formatting dominated those profiles.
	b := make([]byte, 0, 8*(len(g.L)+len(g.W)+len(g.R))+3)
	b = appendDesc(b, 'L', g.L)
	b = appendDesc(b, 'W', g.W)
	b = appendDesc(b, 'R', g.R)
	return string(b)
}

// appendDesc appends tag then "attr:val;" per condition, the Key encoding.
func appendDesc(b []byte, tag byte, d Descriptor) []byte {
	b = append(b, tag)
	for _, c := range d {
		b = strconv.AppendInt(b, int64(c.Attr), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(c.Val), 10)
		b = append(b, ';')
	}
	return b
}

// RHSKey canonically encodes only the RHS; the generality filter groups
// candidate blockers by identical RHS.
func (g GR) RHSKey() string {
	b := make([]byte, 0, 8*len(g.R))
	for _, c := range g.R {
		b = strconv.AppendInt(b, int64(c.Attr), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(c.Val), 10)
		b = append(b, ';')
	}
	return string(b)
}

// Format renders the GR with schema labels, e.g.
// "(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)" or, with edge conditions,
// "(A:DB) -[S:often]-> (A:DM)".
func (g GR) Format(s *graph.Schema) string {
	arrow := " -> "
	if len(g.W) > 0 {
		arrow = " -[" + strings.Trim(g.W.format(s.Edge), "()") + "]-> "
	}
	return g.L.format(s.Node) + arrow + g.R.format(s.Node)
}

// String renders the GR with raw attribute indices (no schema needed).
func (g GR) String() string {
	return fmt.Sprintf("L%v W%v R%v", g.L, g.W, g.R)
}

// Scored pairs a GR with its measurements for ranking and reporting.
type Scored struct {
	GR    GR
	Supp  int     // absolute support |E(l ∧ w ∧ r)|
	Score float64 // primary ranking metric (nhp by default)
	Conf  float64 // standard confidence, kept for comparison output
}

// Less orders Scored GRs by Definition 5 rank: score (nhp) descending, then
// support descending, then canonical key ascending.
func Less(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Supp != b.Supp {
		return a.Supp > b.Supp
	}
	return a.GR.Key() < b.GR.Key()
}

// Sort sorts rs into Definition 5 rank order.
func Sort(rs []Scored) {
	sort.Slice(rs, func(i, j int) bool { return Less(rs[i], rs[j]) })
}
