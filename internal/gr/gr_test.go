package gr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"grminer/internal/graph"
)

func schema(t *testing.T) *graph.Schema {
	t.Helper()
	s, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "SEX", Domain: 2, Labels: []string{"∅", "F", "M"}},
			{Name: "RACE", Domain: 3, Homophily: true},
			{Name: "EDU", Domain: 3, Homophily: true, Labels: []string{"∅", "HighSchool", "College", "Grad"}},
		},
		[]graph.Attribute{{Name: "TYPE", Domain: 2, Labels: []string{"∅", "dates", "friends"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDescriptorWithGet(t *testing.T) {
	var d Descriptor
	d = d.With(2, 3).With(0, 1).With(5, 2)
	if len(d) != 3 || d[0].Attr != 0 || d[1].Attr != 2 || d[2].Attr != 5 {
		t.Fatalf("sorted invariant broken: %v", d)
	}
	if v, ok := d.Get(2); !ok || v != 3 {
		t.Errorf("Get(2) = %d, %v", v, ok)
	}
	if _, ok := d.Get(4); ok {
		t.Error("Get(4) found missing attr")
	}
	d2 := d.With(2, 1) // replace
	if v, _ := d2.Get(2); v != 1 {
		t.Errorf("replace failed: %d", v)
	}
	if v, _ := d.Get(2); v != 3 {
		t.Error("With mutated receiver")
	}
	d3 := d.Without(2)
	if d3.Has(2) || len(d3) != 2 {
		t.Errorf("Without failed: %v", d3)
	}
}

func TestDescriptorSubsetEqual(t *testing.T) {
	a := D(0, 1, 2, 3)
	b := D(0, 1, 1, 2, 2, 3)
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !Descriptor(nil).SubsetOf(a) {
		t.Error("empty should be subset of anything")
	}
	if !a.SubsetOf(a) || !a.Equal(a.Clone()) {
		t.Error("reflexivity broken")
	}
	c := D(0, 2, 2, 3)
	if a.SubsetOf(c) { // same attr, different value
		t.Error("subset ignored value mismatch")
	}
	if a.Equal(c) {
		t.Error("Equal ignored value mismatch")
	}
}

func TestDescriptorValid(t *testing.T) {
	s := schema(t)
	if err := D(0, 1, 2, 3).Valid(s.Node); err != nil {
		t.Errorf("valid descriptor rejected: %v", err)
	}
	bad := []Descriptor{
		{{Attr: 0, Val: 0}},         // null value
		{{Attr: 9, Val: 1}},         // attr out of range
		{{Attr: 0, Val: 9}},         // value out of domain
		{{Attr: 1, Val: 1}, {0, 1}}, // unsorted
		{{Attr: 1, Val: 1}, {1, 2}}, // duplicate attr
		{{Attr: -1, Val: 1}},        // negative attr
	}
	for i, d := range bad {
		if err := d.Valid(s.Node); err == nil {
			t.Errorf("case %d: invalid descriptor %v accepted", i, d)
		}
	}
}

// Paper Example 2 / Section III-B: GR4 = (SEX:F, EDU:Grad) -> (SEX:M,
// EDU:College) has β = {EDU} and homophily effect (SEX:F, EDU:Grad) ->
// (EDU:Grad).
func TestBetaAndHomophilyEffect(t *testing.T) {
	s := schema(t)
	gr4 := GR{
		L: D(0, 1, 2, 3), // SEX:F, EDU:Grad
		R: D(0, 2, 2, 2), // SEX:M, EDU:College
	}
	beta := gr4.Beta(s)
	if len(beta) != 1 || beta[0] != 2 {
		t.Fatalf("β = %v, want [EDU]", beta)
	}
	eff, ok := gr4.HomophilyEffect(s)
	if !ok {
		t.Fatal("homophily effect missing")
	}
	if !eff.L.Equal(gr4.L) || !eff.R.Equal(D(2, 3)) {
		t.Errorf("effect = %v", eff)
	}
	if !eff.Trivial(s) {
		t.Error("homophily effect must be trivial")
	}

	// GR3 = (SEX:F, EDU:Grad) -> (SEX:M, EDU:Grad): EDU matches, so β = ∅
	// (SEX is non-homophily and never enters β).
	gr3 := GR{L: D(0, 1, 2, 3), R: D(0, 2, 2, 3)}
	if len(gr3.Beta(s)) != 0 {
		t.Errorf("GR3 β = %v, want empty", gr3.Beta(s))
	}
	if _, ok := gr3.HomophilyEffect(s); ok {
		t.Error("GR3 should have no homophily effect")
	}
}

func TestTrivial(t *testing.T) {
	s := schema(t)
	cases := []struct {
		name string
		g    GR
		want bool
	}{
		{"matching homophily value", GR{L: D(2, 3), R: D(2, 3)}, true},
		{"two matching values", GR{L: D(1, 2, 2, 3), R: D(1, 2, 2, 3)}, true},
		{"different value", GR{L: D(2, 3), R: D(2, 2)}, false},
		{"non-homophily attr in RHS", GR{L: D(0, 1), R: D(0, 1)}, false},
		{"RHS attr missing from LHS", GR{L: D(0, 1), R: D(2, 3)}, false},
		{"mixed trivial+nontrivial", GR{L: D(2, 3), R: D(0, 1, 2, 3)}, false},
		{"empty RHS", GR{L: D(2, 3)}, false},
		{"with edge attr", GR{L: D(2, 3), W: D(0, 1), R: D(2, 3)}, true},
	}
	for _, c := range cases {
		if got := c.g.Trivial(s); got != c.want {
			t.Errorf("%s: Trivial = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMoreGeneral(t *testing.T) {
	g1 := GR{L: D(0, 1), R: D(2, 3)}
	g2 := GR{L: D(0, 1, 1, 2), W: D(0, 1), R: D(2, 3)}
	g3 := GR{L: D(0, 1), R: D(2, 2)} // different RHS
	if !MoreGeneral(g1, g2) || !StrictlyMoreGeneral(g1, g2) {
		t.Error("g1 should be (strictly) more general than g2")
	}
	if MoreGeneral(g2, g1) {
		t.Error("g2 is not more general than g1")
	}
	if MoreGeneral(g1, g3) {
		t.Error("different RHS cannot be comparable")
	}
	if !MoreGeneral(g1, g1) || StrictlyMoreGeneral(g1, g1) {
		t.Error("reflexive generality wrong")
	}
}

func TestValidGR(t *testing.T) {
	s := schema(t)
	good := GR{L: D(0, 1), W: D(0, 1), R: D(2, 3)}
	if err := good.Valid(s); err != nil {
		t.Errorf("valid GR rejected: %v", err)
	}
	if err := (GR{L: D(0, 1)}).Valid(s); err == nil {
		t.Error("empty RHS accepted")
	}
	if err := (GR{R: D(0, 9)}).Valid(s); err == nil {
		t.Error("out-of-domain RHS accepted")
	}
	if err := (GR{W: D(5, 1), R: D(0, 1)}).Valid(s); err == nil {
		t.Error("bad edge attr accepted")
	}
}

func TestFormatAndKey(t *testing.T) {
	s := schema(t)
	g := GR{L: D(0, 1, 2, 3), R: D(0, 2, 2, 2)}
	want := "(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)"
	if got := g.Format(s); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	gw := GR{L: D(1, 1), W: D(0, 1), R: D(1, 2)}
	if got := gw.Format(s); got != "(RACE:1) -[TYPE:dates]-> (RACE:2)" {
		t.Errorf("Format with edge = %q", got)
	}
	if got := (GR{R: D(0, 1)}).Format(s); got != "() -> (SEX:F)" {
		t.Errorf("empty LHS Format = %q", got)
	}
	if g.Key() == gw.Key() {
		t.Error("distinct GRs share a key")
	}
	if g.Key() != g.Clone().Key() {
		t.Error("clone changed key")
	}
	if g.RHSKey() != (GR{L: D(1, 1), R: D(0, 2, 2, 2)}).RHSKey() {
		t.Error("RHSKey should ignore LHS")
	}
}

func TestScoredOrdering(t *testing.T) {
	a := Scored{GR: GR{R: D(0, 1)}, Supp: 10, Score: 0.9}
	b := Scored{GR: GR{R: D(0, 2)}, Supp: 99, Score: 0.8}
	c := Scored{GR: GR{R: D(0, 2)}, Supp: 99, Score: 0.9}
	d := Scored{GR: GR{R: D(1, 1)}, Supp: 10, Score: 0.9}
	if !Less(a, b) {
		t.Error("higher score must rank first")
	}
	if !Less(c, a) {
		t.Error("equal score: higher supp must rank first")
	}
	if !Less(a, d) {
		t.Error("equal score+supp: key order must break ties")
	}
	rs := []Scored{b, d, a, c}
	Sort(rs)
	if !Less(rs[0], rs[1]) || !Less(rs[1], rs[2]) || !Less(rs[2], rs[3]) {
		t.Errorf("Sort order wrong: %v", rs)
	}
}

func randomDescriptor(r *rand.Rand, nAttrs, maxDomain int) Descriptor {
	var d Descriptor
	for a := 0; a < nAttrs; a++ {
		if r.Intn(2) == 0 {
			d = d.With(a, graph.Value(1+r.Intn(maxDomain)))
		}
	}
	return d
}

// Property: SubsetOf agrees with a naive map-based implementation.
func TestSubsetOfProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomDescriptor(r, 5, 3)
		b := randomDescriptor(r, 5, 3)
		m := make(map[int]graph.Value)
		for _, c := range b {
			m[c.Attr] = c.Val
		}
		naive := true
		for _, c := range a {
			if m[c.Attr] != c.Val {
				naive = false
				break
			}
		}
		return a.SubsetOf(b) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: With keeps descriptors sorted and unique, and Get returns what
// was last written.
func TestWithInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var d Descriptor
		last := make(map[int]graph.Value)
		for _, op := range ops {
			attr := int(op % 8)
			val := graph.Value(op%5 + 1)
			d = d.With(attr, val)
			last[attr] = val
		}
		if !sort.SliceIsSorted(d, func(i, j int) bool { return d[i].Attr < d[j].Attr }) {
			return false
		}
		seen := map[int]bool{}
		for _, c := range d {
			if seen[c.Attr] {
				return false
			}
			seen[c.Attr] = true
			if last[c.Attr] != c.Val {
				return false
			}
		}
		return len(d) == len(last)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the homophily effect is always trivial and its β is empty.
func TestHomophilyEffectProperty(t *testing.T) {
	s := schema(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := GR{
			L: randomDescriptor(r, len(s.Node), 2),
			R: randomDescriptor(r, len(s.Node), 2),
		}
		if len(g.R) == 0 {
			return true
		}
		eff, ok := g.HomophilyEffect(s)
		if !ok {
			return len(g.Beta(s)) == 0
		}
		return eff.Trivial(s) && len(eff.Beta(s)) == 0 && len(eff.R) == len(g.Beta(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
