package buc

import (
	"math/rand"
	"testing"

	"grminer/internal/graph"
)

// memTable is a simple in-memory Table for tests.
type memTable struct {
	rows    [][]graph.Value
	domains []int
}

func (m memTable) Rows() int                            { return len(m.rows) }
func (m memTable) Cols() int                            { return len(m.domains) }
func (m memTable) Domain(col int) int                   { return m.domains[col] }
func (m memTable) Value(row int32, col int) graph.Value { return m.rows[row][col] }

func TestComputeSmall(t *testing.T) {
	tbl := memTable{
		domains: []int{2, 2},
		rows: [][]graph.Value{
			{1, 1},
			{1, 2},
			{1, 1},
			{2, 1},
		},
	}
	res, err := Compute(tbl, 1)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]int{
		"":         4,
		"0:1;":     3,
		"0:2;":     1,
		"1:1;":     3,
		"1:2;":     1,
		"0:1;1:1;": 2,
		"0:1;1:2;": 1,
		"0:2;1:1;": 1,
	}
	for key, want := range checks {
		if got := res.Cells[key]; got != want {
			t.Errorf("cell %q = %d, want %d", key, got, want)
		}
	}
	// 0:2;1:2; has no rows and must be absent.
	if _, ok := res.Cells["0:2;1:2;"]; ok {
		t.Error("empty cell materialised")
	}
	if len(res.List) != 7 {
		t.Errorf("list has %d cells, want 7", len(res.List))
	}
}

func TestComputeMinSupp(t *testing.T) {
	tbl := memTable{
		domains: []int{2, 2},
		rows: [][]graph.Value{
			{1, 1}, {1, 2}, {1, 1}, {2, 1},
		},
	}
	res, err := Compute(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	for key, n := range res.Cells {
		if key != "" && n < 2 {
			t.Errorf("infrequent cell %q (count %d) survived", key, n)
		}
	}
	if _, ok := res.Cells["0:2;"]; ok {
		t.Error("cell below minSupp kept")
	}
	if _, ok := res.Cells["0:1;1:1;"]; !ok {
		t.Error("frequent cell lost")
	}
}

func TestNullsNeverCondition(t *testing.T) {
	tbl := memTable{
		domains: []int{2},
		rows:    [][]graph.Value{{0}, {0}, {1}},
	}
	res, err := Compute(tbl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Cells["0:0;"]; ok {
		t.Error("null value formed a cell")
	}
	if res.Cells["0:1;"] != 1 {
		t.Errorf("cell 0:1 = %d, want 1", res.Cells["0:1;"])
	}
}

func TestComputeValidation(t *testing.T) {
	tbl := memTable{domains: []int{2}}
	if _, err := Compute(tbl, 0); err == nil {
		t.Error("minSupp 0 accepted")
	}
	res, err := Compute(tbl, 1) // zero rows
	if err != nil {
		t.Fatal(err)
	}
	if len(res.List) != 0 || res.Cells[""] != 0 {
		t.Errorf("empty table produced cells: %v", res.Cells)
	}
}

func TestCountMatching(t *testing.T) {
	tbl := memTable{
		domains: []int{2, 3},
		rows: [][]graph.Value{
			{1, 3}, {1, 1}, {2, 3}, {1, 3},
		},
	}
	if got := CountMatching(tbl, []Cond{{0, 1}, {1, 3}}); got != 2 {
		t.Errorf("CountMatching = %d, want 2", got)
	}
	if got := CountMatching(tbl, nil); got != 4 {
		t.Errorf("CountMatching(nil) = %d, want 4", got)
	}
}

func TestSortCells(t *testing.T) {
	cells := []Cell{
		{Conds: []Cond{{0, 1}, {1, 1}}},
		{Conds: []Cond{{1, 2}}},
		{Conds: []Cond{{0, 2}}},
	}
	SortCells(cells)
	if len(cells[0].Conds) != 1 || len(cells[2].Conds) != 2 {
		t.Errorf("cells not sorted general-first: %v", cells)
	}
	if Key(cells[0].Conds) > Key(cells[1].Conds) {
		t.Error("equal-length cells not in key order")
	}
}

// Every cell's count must equal a direct scan, on random tables.
func TestComputeMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		cols := 2 + r.Intn(3)
		domains := make([]int, cols)
		for i := range domains {
			domains[i] = 1 + r.Intn(3)
		}
		rows := make([][]graph.Value, 20+r.Intn(40))
		for i := range rows {
			row := make([]graph.Value, cols)
			for c := range row {
				row[c] = graph.Value(r.Intn(domains[c] + 1))
			}
			rows[i] = row
		}
		tbl := memTable{rows: rows, domains: domains}
		minSupp := 1 + r.Intn(3)
		res, err := Compute(tbl, minSupp)
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range res.List {
			if want := CountMatching(tbl, cell.Conds); cell.Count != want {
				t.Fatalf("seed %d: cell %q count %d, scan %d", seed, Key(cell.Conds), cell.Count, want)
			}
			if cell.Count < minSupp {
				t.Fatalf("seed %d: infrequent cell %q", seed, Key(cell.Conds))
			}
		}
		// Completeness: no frequent 2-condition combination missing.
		for c1 := 0; c1 < cols; c1++ {
			for v1 := 1; v1 <= domains[c1]; v1++ {
				for c2 := c1 + 1; c2 < cols; c2++ {
					for v2 := 1; v2 <= domains[c2]; v2++ {
						conds := []Cond{{c1, graph.Value(v1)}, {c2, graph.Value(v2)}}
						n := CountMatching(tbl, conds)
						if n >= minSupp {
							if _, ok := res.Count(conds); !ok {
								t.Fatalf("seed %d: frequent cell %q missing", seed, Key(conds))
							}
						}
					}
				}
			}
		}
	}
}
