// Package buc implements Bottom-Up Computation of iceberg cubes (Beyer &
// Ramakrishnan, SIGMOD 1999, the paper's reference [23]): it enumerates
// every combination of column values whose row count meets a minimum
// support, by recursive counting-sort partitioning. The paper's baselines
// BL1 and BL2 run BUC over, respectively, the single-table and the
// three-array representation of the network, pruning only on support, and
// reconstruct GRs in a post-processing step.
package buc

import (
	"fmt"
	"sort"
	"strings"

	"grminer/internal/csort"
	"grminer/internal/graph"
)

// Table abstracts the relation BUC mines: BL1 supplies the materialised
// single table, BL2 an adapter over the compact three-array store.
type Table interface {
	// Rows returns the number of rows (edges).
	Rows() int
	// Cols returns the number of columns (2×#AttrV + #AttrE).
	Cols() int
	// Domain returns the domain size of a column.
	Domain(col int) int
	// Value returns the value at (row, col); 0 is null.
	Value(row int32, col int) graph.Value
}

// Cond is one (column : value) condition of a cell.
type Cond struct {
	Col int
	Val graph.Value
}

// Cell is one iceberg cell: a set of conditions (sorted by column) and the
// number of rows satisfying all of them.
type Cell struct {
	Conds []Cond
	Count int
}

// Key canonically encodes a condition list (must be sorted by column).
func Key(conds []Cond) string {
	var b strings.Builder
	for _, c := range conds {
		fmt.Fprintf(&b, "%d:%d;", c.Col, c.Val)
	}
	return b.String()
}

// Result holds the computed iceberg cube.
type Result struct {
	// Cells maps cell keys to counts; includes the empty cell (all rows).
	Cells map[string]int
	// List holds every non-empty-condition cell for iteration.
	List []Cell
	// Partitions counts counting-sort invocations (work measure).
	Partitions int64
}

// Count looks up a cell by its conditions; absent cells (below the support
// threshold) return 0 and false.
func (r *Result) Count(conds []Cond) (int, bool) {
	n, ok := r.Cells[Key(conds)]
	return n, ok
}

// Compute runs BUC over t with the given absolute minimum support. Null
// values never form conditions but rows holding them still count toward
// less specific cells, mirroring the miner's treatment.
func Compute(t Table, minSupp int) (*Result, error) {
	if minSupp < 1 {
		return nil, fmt.Errorf("buc: minSupp %d < 1", minSupp)
	}
	res := &Result{Cells: make(map[string]int)}
	rows := t.Rows()
	res.Cells[""] = rows

	maxDomain := 1
	for c := 0; c < t.Cols(); c++ {
		if d := t.Domain(c); d > maxDomain {
			maxDomain = d
		}
	}
	part := csort.New(maxDomain)

	ids := make([]int32, rows)
	for i := range ids {
		ids[i] = int32(i)
	}
	buffers := make([][]int32, t.Cols()+1)
	groupBufs := make([][]csort.Group, t.Cols()+1)

	var rec func(data []int32, depth, fromCol int, conds []Cond)
	rec = func(data []int32, depth, fromCol int, conds []Cond) {
		if cap(buffers[depth]) < len(data) {
			buffers[depth] = make([]int32, len(data))
		}
		buf := buffers[depth][:len(data)]
		for col := fromCol; col < t.Cols(); col++ {
			res.Partitions++
			groups := part.Partition(data, func(row int32) uint16 {
				return uint16(t.Value(row, col))
			}, buf)
			groupBufs[depth] = append(groupBufs[depth][:0], groups...)
			for _, grp := range groupBufs[depth] {
				if grp.Val == uint16(graph.Null) {
					continue
				}
				if int(grp.Hi-grp.Lo) < minSupp {
					continue
				}
				sub := buf[grp.Lo:grp.Hi]
				cell := Cell{
					Conds: append(append([]Cond(nil), conds...), Cond{Col: col, Val: graph.Value(grp.Val)}),
					Count: len(sub),
				}
				res.Cells[Key(cell.Conds)] = cell.Count
				res.List = append(res.List, cell)
				rec(sub, depth+1, col+1, cell.Conds)
			}
		}
	}
	if rows > 0 {
		rec(ids, 0, 0, nil)
	}
	return res, nil
}

// CountMatching scans t and counts rows satisfying all conditions; used for
// cells the iceberg dropped (below minSupp) but that a metric denominator
// still needs.
func CountMatching(t Table, conds []Cond) int {
	count := 0
	rows := int32(t.Rows())
	for row := int32(0); row < rows; row++ {
		ok := true
		for _, c := range conds {
			if t.Value(row, c.Col) != c.Val {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// SortCells orders cells by condition count ascending, then key; the
// baselines process candidates most-general-first so the redundancy filter
// can use the same blocker structure as the miner.
func SortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		if len(cells[i].Conds) != len(cells[j].Conds) {
			return len(cells[i].Conds) < len(cells[j].Conds)
		}
		return Key(cells[i].Conds) < Key(cells[j].Conds)
	})
}
