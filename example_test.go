package grminer_test

import (
	"fmt"

	"grminer"
)

// ExampleMine mines the paper's toy dating network for the strongest
// non-homophily ties.
func ExampleMine() {
	g := grminer.ToyDating()
	res, err := grminer.Mine(g, grminer.Options{
		MinSupp:  2,
		MinScore: 0.9,
		K:        3,
	})
	if err != nil {
		panic(err)
	}
	for _, s := range res.TopK {
		fmt.Printf("%s nhp=%.0f%% supp=%d\n", s.GR.Format(g.Schema()), 100*s.Score, s.Supp)
	}
	// Output:
	// (SEX:M) -> (SEX:F) nhp=100% supp=14
	// (SEX:F, RACE:Asian) -> (SEX:M) nhp=100% supp=7
	// (SEX:F, EDU:Grad) -> (SEX:M) nhp=100% supp=6
}

// ExampleWorkbench_QueryText reproduces the paper's Example 2: GR4 has low
// confidence but 100% non-homophily preference.
func ExampleWorkbench_QueryText() {
	g := grminer.ToyDating()
	wb := grminer.NewWorkbench(g)
	rep, err := wb.QueryText("(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)")
	if err != nil {
		panic(err)
	}
	fmt.Printf("conf=%.1f%% nhp=%.1f%%\n", 100*rep.Conf, 100*rep.Nhp)
	// Output:
	// conf=33.3% nhp=100.0%
}

// ExampleParseGR shows the textual GR syntax, including edge descriptors.
func ExampleParseGR() {
	cfg := grminer.DefaultDBLPConfig()
	schema := grminer.DBLP(grminer.DBLPConfig{
		Authors: 10, Pairs: 0, PSameArea: cfg.PSameArea, PCrossDM: cfg.PCrossDM, Seed: 1,
	}).Schema()
	r, err := grminer.ParseGR(schema, "(A:DB) -[S:often]-> (A:DM)")
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Format(schema))
	// Output:
	// (A:DB) -[S:often]-> (A:DM)
}

// ExampleEvalGR verifies the paper's GR1 counts by a direct scan.
func ExampleEvalGR() {
	g := grminer.ToyDating()
	r, err := grminer.ParseGR(g.Schema(), "(SEX:M) -> (SEX:F, RACE:Asian)")
	if err != nil {
		panic(err)
	}
	c := grminer.EvalGR(g, r)
	fmt.Printf("supp=%d lw=%d\n", c.LWR, c.LW)
	// Output:
	// supp=7 lw=14
}
