// Benchmarks mirroring the paper's evaluation, one family per table/figure
// (DESIGN.md §5). They run at reduced scale so `go test -bench=.` finishes
// quickly; `cmd/grbench` performs the full harness runs recorded in
// EXPERIMENTS.md.
package grminer_test

import (
	"strconv"
	"sync"
	"testing"

	"grminer"
	"grminer/internal/baseline"
	"grminer/internal/core"
	"grminer/internal/datagen"
	"grminer/internal/store"
)

// Shared fixtures, built once.
var (
	fixOnce  sync.Once
	pokecG   *grminer.Graph // 6 attrs
	pokec4G  *grminer.Graph // the Fig 4a-4c 4-attribute restriction
	pokecSt  *store.Store
	pokec4St *store.Store
	dblpG    *grminer.Graph
	dblpSt   *store.Store
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		pc := datagen.DefaultPokecConfig()
		pc.Nodes = 4000
		pc.AvgOutDegree = 10
		pokecG = datagen.Pokec(pc)
		var err error
		pokec4G, err = pokecG.Restrict([]int{
			datagen.PokecAge, datagen.PokecRegion, datagen.PokecEdu, datagen.PokecLooking,
		})
		if err != nil {
			panic(err)
		}
		pokecSt = store.Build(pokecG)
		pokec4St = store.Build(pokec4G)

		dc := datagen.DefaultDBLPConfig()
		dc.Authors = 8000
		dc.Pairs = 10000
		dblpG = datagen.DBLP(dc)
		dblpSt = store.Build(dblpG)
	})
}

func mineStore(b *testing.B, st *store.Store, opt core.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.MineStore(st, opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// Table IIa: the Pokec interestingness run (nhp, k = 300).
func BenchmarkTableIIa(b *testing.B) {
	fixtures(b)
	minSupp := pokecG.NumEdges() / 200
	b.Run("GRMinerK-nhp", func(b *testing.B) {
		mineStore(b, pokecSt, core.Options{MinSupp: minSupp, MinScore: 0.5, K: 300, DynamicFloor: true})
	})
	b.Run("ConfMiner", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.ConfMinerStore(pokecSt, minSupp, 0.5, 300); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Table IIb: the DBLP interestingness run (nhp vs conf, k = 20).
func BenchmarkTableIIb(b *testing.B) {
	fixtures(b)
	minSupp := dblpG.NumEdges() / 1000
	b.Run("GRMinerK-nhp", func(b *testing.B) {
		mineStore(b, dblpSt, core.Options{MinSupp: minSupp, MinScore: 0.5, K: 20, DynamicFloor: true})
	})
	b.Run("ConfMiner", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.ConfMinerStore(dblpSt, minSupp, 0.5, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Fig 4a: time vs minSupp. Baselines run only at the moderate thresholds so
// the suite stays fast; grbench covers the full range.
func BenchmarkFig4a(b *testing.B) {
	fixtures(b)
	for _, minSupp := range []int{2, 10, 100, 1000} {
		opt := core.Options{MinSupp: minSupp, MinScore: 0.5, K: 100, DynamicFloor: true}
		b.Run("GRMinerK/minSupp="+itoa(minSupp), func(b *testing.B) {
			mineStore(b, pokec4St, opt)
		})
	}
	for _, minSupp := range []int{100, 1000} {
		b.Run("BL2/minSupp="+itoa(minSupp), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.BL2Store(pokec4St, baseline.Options{MinSupp: minSupp, MinScore: 0.5, K: 100}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("BL1/minSupp="+itoa(minSupp), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.BL1(pokec4G, baseline.Options{MinSupp: minSupp, MinScore: 0.5, K: 100}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Fig 4b: time vs minNhp for the two GRMiner variants.
func BenchmarkFig4b(b *testing.B) {
	fixtures(b)
	for _, pct := range []int{0, 25, 50, 75, 100} {
		nhp := float64(pct) / 100
		b.Run("GRMinerK/minNhp="+itoa(pct), func(b *testing.B) {
			mineStore(b, pokec4St, core.Options{MinSupp: 50, MinScore: nhp, K: 100, DynamicFloor: true})
		})
		b.Run("GRMiner/minNhp="+itoa(pct), func(b *testing.B) {
			mineStore(b, pokec4St, core.Options{MinSupp: 50, MinScore: nhp})
		})
	}
}

// Fig 4c: the joint (k, minNhp) effect on GRMiner(k).
func BenchmarkFig4c(b *testing.B) {
	fixtures(b)
	for _, k := range []int{1, 100, 10000} {
		for _, pct := range []int{0, 50, 100} {
			b.Run("k="+itoa(k)+"/minNhp="+itoa(pct), func(b *testing.B) {
				mineStore(b, pokec4St, core.Options{
					MinSupp: 50, MinScore: float64(pct) / 100, K: k, DynamicFloor: true,
				})
			})
		}
	}
}

// Fig 4d: time vs dimensionality (first l node attributes, 2l dimensions).
func BenchmarkFig4d(b *testing.B) {
	fixtures(b)
	for l := 2; l <= 6; l++ {
		attrs := make([]int, l)
		for i := range attrs {
			attrs[i] = i
		}
		g, err := pokecG.Restrict(attrs)
		if err != nil {
			b.Fatal(err)
		}
		st := store.Build(g)
		b.Run("GRMinerK/dims="+itoa(2*l), func(b *testing.B) {
			mineStore(b, st, core.Options{MinSupp: 50, MinScore: 0.5, K: 100, DynamicFloor: true})
		})
	}
}

// Section VII: the alternative metrics over DBLP.
func BenchmarkAltMetrics(b *testing.B) {
	fixtures(b)
	for _, m := range grminer.AllMetrics() {
		b.Run(m.Name, func(b *testing.B) {
			mineStore(b, dblpSt, core.Options{MinSupp: 50, MinScore: 0, K: 20, Metric: m})
		})
	}
}

// Section IV-A: data-model construction cost, compact vs single table.
func BenchmarkStoreModels(b *testing.B) {
	fixtures(b)
	b.Run("BuildCompact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := store.Build(pokecG)
			_ = st
		}
	})
	b.Run("Flatten", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ft := store.Flatten(pokecG)
			_ = ft
		}
	})
}

// DBLP wall-clock sanity point (Section VI-D).
func BenchmarkDBLPDefaultRun(b *testing.B) {
	fixtures(b)
	mineStore(b, dblpSt, core.Options{MinSupp: 67, MinScore: 0.5, K: 20, DynamicFloor: true})
}

// Ablation: the dynamic tail ordering of Equation 8 versus static τ.
func BenchmarkOrderingAblation(b *testing.B) {
	fixtures(b)
	b.Run("DynamicOrder", func(b *testing.B) {
		mineStore(b, pokec4St, core.Options{MinSupp: 50, MinScore: 0.5})
	})
	b.Run("StaticOrder", func(b *testing.B) {
		mineStore(b, pokec4St, core.Options{MinSupp: 50, MinScore: 0.5, StaticRHSOrder: true})
	})
}

// Parallel worker sweep (speedup requires multicore; on one core this
// measures pure decomposition overhead).
func BenchmarkParallel(b *testing.B) {
	fixtures(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			mineStore(b, pokec4St, core.Options{MinSupp: 50, MinScore: 0.5, Parallelism: workers})
		})
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
