// Package grminer is a from-scratch Go implementation of "Mining Social
// Ties Beyond Homophily" (Liang, Wang, Zhu; IEEE ICDE 2016): mining top-k
// group relationships (GRs) ranked by non-homophily preference (nhp), the
// conditional-probability metric that excludes the homophily effect from
// confidence and thereby surfaces the strong social ties that homophily
// does not explain.
//
// Open is the canonical entrypoint: one EngineConfig spans every engine
// variant — static or incremental, local, sharded, or remote over a fleet
// of shardd worker daemons (with standby failover). The essentials:
//
//	g := grminer.ToyDating() // or load / generate a network
//	e, err := grminer.Open(g, grminer.EngineConfig{
//	    Options: grminer.Options{
//	        MinSupp:  20,   // absolute support threshold
//	        MinScore: 0.5,  // minNhp
//	        K:        10,
//	        DynamicFloor: true, // the paper's GRMiner(k)
//	    },
//	})
//	if err != nil {
//	    log.Fatal(err)
//	}
//	defer e.Close()
//	res, err := e.Mine()
//	if err != nil {
//	    log.Fatal(err)
//	}
//	for _, s := range res.TopK {
//	    fmt.Printf("%s  nhp=%.1f%% supp=%d\n", s.GR.Format(g.Schema()), 100*s.Score, s.Supp)
//	}
//
// Setting Mode: ModeIncremental opens a long-lived engine whose ApplyBatch
// ingests mixed insert/delete batches; Shard and Workers select the sharded
// and remote topologies (see EngineConfig). The historical entrypoints
// (Mine, MineSharded, NewIncremental, MineRemote, ...) remain as thin
// deprecated wrappers over Open; each names its replacement.
//
// The package re-exports the building blocks (attributed graphs, GR
// descriptors, metrics, the compact three-array store, synthetic dataset
// generators, baselines, and the hypothesis workbench) so applications can
// compose them; the implementation lives under internal/.
package grminer

import (
	"fmt"

	"grminer/internal/baseline"
	"grminer/internal/core"
	"grminer/internal/datagen"
	"grminer/internal/dataset"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/hypothesis"
	"grminer/internal/metrics"
	"grminer/internal/propagate"
	"grminer/internal/recommend"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// Re-exported model types. See the internal packages for full documentation.
type (
	// Graph is a directed multigraph with attributed nodes and edges.
	Graph = graph.Graph
	// Schema fixes the node and edge attribute sets of a network.
	Schema = graph.Schema
	// Attribute describes one node or edge attribute, including its
	// homophily designation.
	Attribute = graph.Attribute
	// Value is a single attribute value; 0 is null.
	Value = graph.Value
	// GR is a group relationship l -w-> r.
	GR = gr.GR
	// Descriptor is a set of (attribute : value) conditions.
	Descriptor = gr.Descriptor
	// Scored pairs a GR with its support, ranking score, and confidence.
	Scored = gr.Scored
	// Options configures a mining run (thresholds, top-k, metric).
	Options = core.Options
	// Result is a completed mining run: ranked GRs plus search statistics.
	Result = core.Result
	// Stats reports the work a mining run performed.
	Stats = core.Stats
	// Plan is the execution strategy AutoTune selects from the input size
	// (worker count, descriptor caps, sequential/parallel crossover).
	Plan = core.Plan
	// Incremental maintains the top-k under edge insertions without full
	// re-mines (tracked candidate pool + scoped subtree re-mining).
	Incremental = core.Incremental
	// IncrementalSharded is Incremental over a sharded edge set: batches
	// are routed to the owning shard and the global top-k is re-merged.
	IncrementalSharded = core.IncrementalSharded
	// ShardOptions selects the layout of a sharded mine (shard count and
	// edge-routing strategy).
	ShardOptions = core.ShardOptions
	// ShardPlan describes one sharded run: layout, per-shard edge counts,
	// and the lowered per-shard offer threshold.
	ShardPlan = core.ShardPlan
	// ShardCoordinator owns one sharded run: the plan, the per-shard
	// workers, and the merge. Use it over MineSharded to inspect the plan
	// without partitioning twice.
	ShardCoordinator = core.ShardCoordinator
	// ShardStrategy names a deterministic edge-routing rule.
	ShardStrategy = graph.ShardStrategy
	// EdgeInsert is one edge for Incremental.Apply.
	EdgeInsert = core.EdgeInsert
	// EdgeDelete is one edge retraction for ApplyBatch: it removes one live
	// edge matching the endpoints and edge values exactly, resolved against
	// the graph as it stood before the batch.
	EdgeDelete = core.EdgeDelete
	// Batch is one mixed insert/delete change set for
	// Incremental.ApplyBatch / IncrementalSharded.ApplyBatch. Malformed
	// input anywhere in a batch — a schema-rejected insert or a retraction
	// matching no live edge — rejects the whole batch atomically.
	Batch = core.Batch
	// IncStats reports the work one incremental batch performed.
	IncStats = core.IncStats
	// WorkerHealth is one shard's failover record (liveness, retries,
	// replacements, replayed batches), reported by Engine.FleetHealth.
	WorkerHealth = core.WorkerHealth
	// Metric is a pluggable interestingness measure (Section VII).
	Metric = metrics.Metric
	// Counts carries the absolute supports metrics are computed from.
	Counts = metrics.Counts
	// Store is the compact LArray/EArray/RArray data model (Section IV-A).
	Store = store.Store
	// Workbench answers exact supp/conf/nhp queries for hypothesis
	// formulation (Remark 3).
	Workbench = hypothesis.Workbench
	// Report carries every measurement of one queried GR.
	Report = hypothesis.Report
	// BaselineOptions configures the BUC baselines BL1 and BL2.
	BaselineOptions = baseline.Options
	// BaselineResult is a completed baseline run.
	BaselineResult = baseline.Result
	// PokecConfig controls the synthetic Pokec-like generator.
	PokecConfig = datagen.PokecConfig
	// DBLPConfig controls the synthetic DBLP-like generator.
	DBLPConfig = datagen.DBLPConfig
)

// Null is the null attribute value; it never appears in a descriptor.
const Null = graph.Null

// DefaultCheckpointInterval is how many acknowledged ingest batches a shard
// supervisor logs between worker-state checkpoints when
// ShardOptions.CheckpointInterval is left zero.
const DefaultCheckpointInterval = core.DefaultCheckpointInterval

// NewSchema validates and returns a schema.
func NewSchema(node, edge []Attribute) (*Schema, error) { return graph.NewSchema(node, edge) }

// NewGraph creates a graph with the given node count and no edges.
func NewGraph(schema *Schema, numNodes int) (*Graph, error) { return graph.New(schema, numNodes) }

// LoadFiles reads a graph from schema/nodes/edges files (see internal/graph
// for the line formats).
func LoadFiles(schemaPath, nodesPath, edgesPath string) (*Graph, error) {
	return graph.LoadFiles(schemaPath, nodesPath, edgesPath)
}

// SaveFiles writes a graph's schema/nodes/edges files.
func SaveFiles(g *Graph, schemaPath, nodesPath, edgesPath string) error {
	return graph.SaveFiles(g, schemaPath, nodesPath, edgesPath)
}

// Mine runs GRMiner over g (Algorithm 1) and returns the top-k GRs.
//
// Deprecated: use Open with EngineConfig{Options: opt} and Engine.Mine.
func Mine(g *Graph, opt Options) (*Result, error) {
	return mineVia(Open(g, EngineConfig{Options: opt}))
}

// BuildStore precomputes the compact data model so repeated Mine runs skip
// the build.
func BuildStore(g *Graph) *Store { return store.Build(g) }

// MineStore is Mine over a pre-built store.
//
// Deprecated: use OpenStore with EngineConfig{Options: opt} and Engine.Mine.
func MineStore(st *Store, opt Options) (*Result, error) {
	return mineVia(OpenStore(st, EngineConfig{Options: opt}))
}

// MineAuto is Mine with the AutoTune planner applied first: zero-valued
// execution knobs (Parallelism, MaxL/MaxW/MaxR) are filled from the input's
// edge count, attribute arity, and the machine's CPU count; small inputs
// stay sequential, large ones fan out over the lock-light parallel engine.
//
// Deprecated: use Open with EngineConfig{Options: opt, Auto: true}.
func MineAuto(g *Graph, opt Options) (*Result, error) {
	return mineVia(Open(g, EngineConfig{Options: opt, Auto: true}))
}

// MineAutoStore is MineAuto over a pre-built store.
//
// Deprecated: use OpenStore with EngineConfig{Options: opt, Auto: true}.
func MineAutoStore(st *Store, opt Options) (*Result, error) {
	return mineVia(OpenStore(st, EngineConfig{Options: opt, Auto: true}))
}

// mineVia runs the one-shot mine the deprecated Mine* wrappers delegate to.
func mineVia(e *Engine, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Mine()
}

// AutoPlan previews the execution strategy MineAuto would choose for st
// under a given CPU budget (procs 0 = all cores) without mining. Apply the
// returned plan to an Options value with Plan.Apply.
func AutoPlan(st *Store, procs int, opt Options) Plan { return core.PlanFor(st, procs, opt) }

// AutoPlanGraph is AutoPlan from the graph's size features alone, for
// callers (like the incremental engine's consumers) that have no store yet.
func AutoPlanGraph(g *Graph, procs int, opt Options) Plan {
	return core.PlanForSize(g.NumEdges(), g.Schema(), procs, opt)
}

// NewIncremental seeds a fully dynamic incremental mining engine over g:
// the returned engine maintains the same top-k a fresh Mine would produce
// while mixed edge batches are ingested with Apply (insertions) or
// ApplyBatch (insertions + retractions), re-mining only the SFDF subtrees
// each batch can actually change (a full re-mine per batch only for metrics
// whose scores can rise with |E| — the lift family always, gain for batches
// containing deletions). Options.PoolCap bounds the tracked candidate pool,
// spilling low scorers to a score-ordered frontier and re-mining exactly
// when the answer could depend on it. The engine owns g — batches mutate
// it — and, like the parallel engine, a dynamic floor forces
// ExactGenerality so the maintained result is order-independent
// (Incremental.Options returns the effective settings).
//
// Deprecated: use Open with EngineConfig{Mode: ModeIncremental, Options: opt};
// Engine.Incremental returns this engine.
func NewIncremental(g *Graph, opt Options) (*Incremental, error) {
	e, err := Open(g, EngineConfig{Mode: ModeIncremental, Options: opt})
	if err != nil {
		return nil, err
	}
	return e.Incremental(), nil
}

// TopKChanged counts entries of cur that are new or re-scored relative to
// prev — the churn one ingested batch caused.
func TopKChanged(prev, cur []Scored) int { return topk.ChangedFrom(prev, cur) }

// Shard-routing strategies for MineSharded and NewIncrementalSharded.
const (
	// ShardBySource routes edges by a hash of the source node id.
	ShardBySource = graph.ShardBySource
	// ShardByRHS routes edges by a hash of the destination node's
	// attribute row.
	ShardByRHS = graph.ShardByRHS
)

// ParseShardStrategy maps a CLI spelling ("src", "rhs") to a strategy.
func ParseShardStrategy(s string) (ShardStrategy, error) { return graph.ParseShardStrategy(s) }

// MineSharded partitions g's edges into so.Shards deterministic shards,
// mines every shard concurrently as an independent store, and merges the
// per-shard candidate pools into the exact global top-k — the same ranked
// list MineStore produces over a single store (see internal/core/shard.go
// for the candidate-union soundness argument). Like the parallel engine, a
// dynamic floor forces ExactGenerality; Result.Options echoes the effective
// settings.
//
// Deprecated: use Open with EngineConfig{Options: opt, Shard: so} and
// Engine.Mine.
func MineSharded(g *Graph, opt Options, so ShardOptions) (*Result, error) {
	if so.Shards <= 0 {
		// Open would read a zero shard count as "local"; go straight to the
		// core engine so its shard-count validation error surfaces.
		return core.MineSharded(g, opt, so)
	}
	return mineVia(Open(g, EngineConfig{Options: opt, Shard: so}))
}

// PlanShards previews the sharded layout MineSharded would use without
// building shard stores or mining.
func PlanShards(g *Graph, opt Options, so ShardOptions) (ShardPlan, error) {
	return core.PlanShards(g, opt, so)
}

// NewShardCoordinator partitions g's edges once and returns the
// coordinator behind MineSharded, for callers that want the plan
// (Plan), the effective options (Options), and the mine (Mine) from a
// single partitioning pass.
//
// Deprecated: use Open with EngineConfig{Options: opt, Shard: so};
// Engine.Coordinator returns this coordinator.
func NewShardCoordinator(g *Graph, opt Options, so ShardOptions) (*ShardCoordinator, error) {
	if so.Shards <= 0 {
		return core.NewShardCoordinator(g, opt, so)
	}
	e, err := Open(g, EngineConfig{Options: opt, Shard: so})
	if err != nil {
		return nil, err
	}
	return e.Coordinator(), nil
}

// NewIncrementalSharded seeds a shard-aware fully dynamic incremental
// engine: every applied EdgeInsert and EdgeDelete is routed to the shard
// that owns it under the plan's deterministic (endpoint-pure) strategy,
// per-shard candidate pools are delta-maintained worker-side — deletions
// decrement shard counts and can demote entries below the pigeonhole
// threshold — and the global top-k is re-merged after every batch, for
// every metric, with no full re-mine fallback. The engine owns g, like
// NewIncremental.
//
// Deprecated: use Open with EngineConfig{Mode: ModeIncremental, Options:
// opt, Shard: so}; Engine.IncrementalSharded returns this engine.
func NewIncrementalSharded(g *Graph, opt Options, so ShardOptions) (*IncrementalSharded, error) {
	if so.Shards <= 0 {
		return core.NewIncrementalSharded(g, opt, so)
	}
	e, err := Open(g, EngineConfig{Mode: ModeIncremental, Options: opt, Shard: so})
	if err != nil {
		return nil, err
	}
	return e.IncrementalSharded(), nil
}

// MineRemote is MineSharded with every shard placed on a shardd worker
// daemon: workers[i] (a "host:port" address) receives shard i's data and
// mines it behind the internal/rpc protocol, and the local coordinator
// merges the offers into the exact global top-k — identical to a
// single-store Mine under the coordinator's effective options. The shard
// count defaults to len(workers); a larger explicit so.Shards multiplexes
// shards onto daemon slots, a smaller one is rejected
// (*ErrShardWorkerMismatch). Worker connections are closed before
// returning.
//
// Deprecated: use Open with EngineConfig{Options: opt, Shard: so, Workers:
// workers} and Engine.Mine (Close the engine to release the connections).
func MineRemote(g *Graph, opt Options, so ShardOptions, workers []string) (*Result, error) {
	if err := needWorkers(workers); err != nil {
		return nil, err
	}
	return mineVia(Open(g, EngineConfig{Options: opt, Shard: so, Workers: workers}))
}

// NewRemoteShardCoordinator is NewShardCoordinator over shardd worker
// daemons; callers must Close it to release the connections.
//
// Deprecated: use Open with EngineConfig{Options: opt, Shard: so, Workers:
// workers}; Engine.Coordinator returns this coordinator.
func NewRemoteShardCoordinator(g *Graph, opt Options, so ShardOptions, workers []string) (*ShardCoordinator, error) {
	if err := needWorkers(workers); err != nil {
		return nil, err
	}
	e, err := Open(g, EngineConfig{Options: opt, Shard: so, Workers: workers})
	if err != nil {
		return nil, err
	}
	return e.Coordinator(), nil
}

// NewIncrementalRemote is NewIncrementalSharded over shardd worker daemons:
// each worker ingests its routed batch slices and maintains its own relaxed
// candidate pool; only pool deltas and count queries cross the wire.
// Callers must Close the engine to release the connections.
//
// Deprecated: use Open with EngineConfig{Mode: ModeIncremental, Options:
// opt, Shard: so, Workers: workers}; Engine.IncrementalSharded returns this
// engine.
func NewIncrementalRemote(g *Graph, opt Options, so ShardOptions, workers []string) (*IncrementalSharded, error) {
	if err := needWorkers(workers); err != nil {
		return nil, err
	}
	e, err := Open(g, EngineConfig{Mode: ModeIncremental, Options: opt, Shard: so, Workers: workers})
	if err != nil {
		return nil, err
	}
	return e.IncrementalSharded(), nil
}

// needWorkers preserves the deprecated remote entrypoints' explicit
// no-workers error (Open would read an empty list as a local topology).
func needWorkers(workers []string) error {
	if len(workers) == 0 {
		return fmt.Errorf("grminer: remote mining needs at least one worker address")
	}
	return nil
}

// ParseGR parses the textual GR form, e.g. "(SEX:F, EDU:Grad) -> (SEX:M)".
func ParseGR(s *Schema, text string) (GR, error) { return gr.ParseGR(s, text) }

// NewWorkbench returns a hypothesis workbench over g.
func NewWorkbench(g *Graph) *Workbench { return hypothesis.New(g) }

// EvalGR measures a GR exactly by a full scan.
func EvalGR(g *Graph, r GR) Counts { return metrics.Eval(g, r) }

// Builtin metrics (Section III-B and VII).
var (
	// NhpMetric is non-homophily preference, the paper's ranking metric.
	NhpMetric = metrics.NhpMetric
	// ConfMetric is standard confidence.
	ConfMetric = metrics.ConfMetric
	// LaplaceMetric, GainMetric, PSMetric, ConvictionMetric and LiftMetric
	// are the Section VII alternatives.
	LaplaceMetric    = metrics.LaplaceMetric
	GainMetric       = metrics.GainMetric
	PSMetric         = metrics.PSMetric
	ConvictionMetric = metrics.ConvictionMetric
	LiftMetric       = metrics.LiftMetric
)

// MetricByName looks up a builtin metric ("nhp", "conf", "laplace", "gain",
// "piatetsky-shapiro", "conviction", "lift").
func MetricByName(name string) (Metric, error) { return metrics.ByName(name) }

// AllMetrics lists every builtin metric.
func AllMetrics() []Metric { return metrics.All() }

// ToyDating returns the paper's Figure 1 toy dating network.
func ToyDating() *Graph { return dataset.ToyDating() }

// ToySchema returns the toy network's schema.
func ToySchema() *Schema { return dataset.ToySchema() }

// Pokec generates the synthetic Pokec-like social network (the stand-in for
// the SNAP soc-pokec dataset; see DESIGN.md §3).
func Pokec(cfg PokecConfig) *Graph { return datagen.Pokec(cfg) }

// DefaultPokecConfig returns a laptop-scale Pokec configuration.
func DefaultPokecConfig() PokecConfig { return datagen.DefaultPokecConfig() }

// DBLP generates the synthetic DBLP-like co-authorship network.
func DBLP(cfg DBLPConfig) *Graph { return datagen.DBLP(cfg) }

// DefaultDBLPConfig reproduces the paper's DBLP scale (28,702 authors,
// 66,832 directed edges).
func DefaultDBLPConfig() DBLPConfig { return datagen.DefaultDBLPConfig() }

// BL1 runs the single-table BUC baseline (Section VI-D).
func BL1(g *Graph, opt BaselineOptions) (*BaselineResult, error) { return baseline.BL1(g, opt) }

// BL2 runs the three-array BUC baseline.
func BL2(g *Graph, opt BaselineOptions) (*BaselineResult, error) { return baseline.BL2(g, opt) }

// ConfMiner mines top-k GRs ranked by plain confidence with trivial GRs
// admitted — the comparison column of the paper's Table II.
func ConfMiner(g *Graph, minSupp int, minConf float64, k int) (*Result, error) {
	return baseline.ConfMiner(g, minSupp, minConf, k)
}

// Application substrates (the uses Sections I-II of the paper motivate).
type (
	// PropagateConfig controls GR-driven class propagation.
	PropagateConfig = propagate.Config
	// PropagateResult holds propagated class beliefs.
	PropagateResult = propagate.Result
	// Recommender drives Example 3-style cross-sell recommendations from
	// mined GRs.
	Recommender = recommend.Recommender
	// Suggestion is one recommendation for a node.
	Suggestion = recommend.Suggestion
	// Prospect is one (node, score) campaign target.
	Prospect = recommend.Prospect
)

// InfluenceMatrix derives a class-compatibility matrix for one node
// attribute from the network (diagonal: confidence of the homophily bond;
// off-diagonal: nhp of the secondary bonds), for use with Propagate.
func InfluenceMatrix(g *Graph, attr int) ([][]float64, error) {
	return propagate.InfluenceMatrix(g, attr)
}

// Propagate runs GR-influence class propagation (Section II: "GRs can serve
// as the assumed influence matrix").
func Propagate(g *Graph, influence [][]float64, cfg PropagateConfig) (*PropagateResult, error) {
	return propagate.Run(g, influence, cfg)
}

// NewRecommender builds an Example 3-style recommender from mined GRs.
func NewRecommender(g *Graph, mined []Scored) *Recommender {
	return recommend.New(g, mined)
}
