package grminer_test

import (
	"math/rand"
	"testing"

	"grminer"
)

// End-to-end facade test of the application substrates: mine GRs, feed them
// to the recommender, and propagate classes with the influence matrix.
func TestFacadeRecommendFlow(t *testing.T) {
	// Small product network: PRODUCT homophily plus a planted
	// Stocks -> Bonds secondary bond.
	schema, err := grminer.NewSchema(
		[]grminer.Attribute{
			{Name: "JOB", Domain: 2, Labels: []string{"∅", "Lawyer", "Other"}},
			{Name: "PRODUCT", Domain: 3, Homophily: true, Labels: []string{"∅", "Savings", "Stocks", "Bonds"}},
		},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grminer.NewGraph(schema, 300)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	var bonds, stocks []int
	for n := 0; n < 300; n++ {
		job := grminer.Value(r.Intn(2) + 1)
		prod := grminer.Value(r.Intn(3) + 1)
		if err := g.SetNodeValues(n, job, prod); err != nil {
			t.Fatal(err)
		}
		switch prod {
		case 2:
			stocks = append(stocks, n)
		case 3:
			bonds = append(bonds, n)
		}
	}
	for e := 0; e < 2500; e++ {
		src := r.Intn(300)
		var dst int
		if g.NodeValue(src, 1) == 2 && r.Float64() < 0.6 {
			dst = bonds[r.Intn(len(bonds))] // the secondary bond
		} else {
			dst = r.Intn(300)
		}
		if dst == src {
			dst = (dst + 1) % 300
		}
		if _, err := g.AddEdge(src, dst); err != nil {
			t.Fatal(err)
		}
	}

	res, err := grminer.Mine(g, grminer.Options{MinSupp: 20, MinScore: 0.5, K: 10, DynamicFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Fatal("no GRs mined")
	}
	rec := grminer.NewRecommender(g, res.TopK)
	if rec.Rules() == 0 {
		t.Fatal("recommender kept no rules")
	}
	// A node with stock-owning in-neighbors that does not own bonds should
	// get bonds suggested.
	target := -1
	for n := 0; n < 300 && target < 0; n++ {
		if g.NodeValue(n, 1) == 3 {
			continue
		}
		for e := 0; e < g.NumEdges(); e++ {
			if g.EdgeAlive(e) && g.Dst(e) == n && g.NodeValue(g.Src(e), 1) == 2 {
				target = n
				break
			}
		}
	}
	if target < 0 {
		t.Fatal("no suitable target node")
	}
	sugg, err := rec.ForNode(target, 3)
	if err != nil {
		t.Fatal(err)
	}
	foundBonds := false
	for _, s := range sugg {
		if v, ok := s.R.Get(1); ok && v == 3 {
			foundBonds = true
		}
	}
	if !foundBonds {
		t.Errorf("bonds not suggested to node %d: %+v", target, sugg)
	}

	// Campaign form.
	prospects, err := rec.Campaign(res.TopK[0].GR.R, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prospects); i++ {
		if prospects[i].Score > prospects[i-1].Score {
			t.Fatal("campaign prospects not sorted")
		}
	}
}

func TestFacadePropagateFlow(t *testing.T) {
	cfg := grminer.DefaultDBLPConfig()
	cfg.Authors = 1500
	cfg.Pairs = 2500
	g := grminer.DBLP(cfg)
	influence, err := grminer.InfluenceMatrix(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(influence) != 4 {
		t.Fatalf("influence matrix %dx?", len(influence))
	}
	res, err := grminer.Propagate(g, influence, grminer.PropagateConfig{Attr: 0})
	if err != nil {
		t.Fatal(err)
	}
	// All nodes are labeled, so predictions must match their labels.
	wrong := 0
	for v := 0; v < g.NumNodes(); v++ {
		if res.Predict(v) != g.NodeValue(v, 0) {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("%d labeled nodes flipped class", wrong)
	}
}
