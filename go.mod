module grminer

go 1.23
