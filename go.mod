module grminer

go 1.24
