package grminer_test

import (
	"errors"
	"testing"

	"grminer"
)

func sameTopK(t *testing.T, want, got *grminer.Result, label string) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("%s: nil result (want %v, got %v)", label, want == nil, got == nil)
	}
	if len(want.TopK) != len(got.TopK) {
		t.Fatalf("%s: %d results vs %d", label, len(want.TopK), len(got.TopK))
	}
	for i := range want.TopK {
		if want.TopK[i].GR.Key() != got.TopK[i].GR.Key() || want.TopK[i].Score != got.TopK[i].Score {
			t.Fatalf("%s: rank %d diverges: %s vs %s", label,
				i, want.TopK[i].GR.Key(), got.TopK[i].GR.Key())
		}
	}
}

// Open's static local engine must reproduce the deprecated Mine exactly,
// with and without Auto planning.
func TestOpenStaticLocal(t *testing.T) {
	g := grminer.ToyDating()
	opt := grminer.Options{MinSupp: 2, MinScore: 0.5, K: 10}
	ref, err := grminer.Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}

	e, err := grminer.Open(g, grminer.EngineConfig{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Mode() != grminer.ModeStatic || e.Store() == nil || e.Incremental() != nil {
		t.Fatal("static local engine has the wrong shape")
	}
	if e.Result() != nil {
		t.Fatal("Result non-nil before the first Mine")
	}
	res, err := e.Mine()
	if err != nil {
		t.Fatal(err)
	}
	sameTopK(t, ref, res, "Open static")
	if e.Result() != res {
		t.Fatal("Result does not return the last Mine")
	}

	// Auto path == MineAuto.
	refAuto, err := grminer.MineAuto(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := grminer.Open(g, grminer.EngineConfig{Options: opt, Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, planned := ea.AutoPlan(); !planned {
		t.Fatal("Auto: true did not plan")
	}
	resAuto, err := ea.Mine()
	if err != nil {
		t.Fatal(err)
	}
	sameTopK(t, refAuto, resAuto, "Open static auto")
}

// Static engines must refuse ingestion.
func TestOpenStaticRejectsIngest(t *testing.T) {
	e, err := grminer.Open(grminer.ToyDating(), grminer.EngineConfig{
		Options: grminer.Options{MinSupp: 2, MinScore: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Apply([]grminer.EdgeInsert{{Src: 0, Dst: 1, Vals: []grminer.Value{1}}}); err == nil {
		t.Fatal("static engine accepted a batch")
	}
	if e.Cumulative() != (grminer.IncStats{}) {
		t.Fatal("static engine reports ingest totals")
	}
}

// Open's incremental engine must behave exactly like NewIncremental:
// batches maintain the same top-k a fresh mine produces, and Explain
// surfaces the tracked counts of every maintained entry.
func TestOpenIncremental(t *testing.T) {
	opt := grminer.Options{MinSupp: 2, MinScore: 0.5, K: 5, DynamicFloor: true}
	e, err := grminer.Open(grminer.ToyDating(), grminer.EngineConfig{
		Mode: grminer.ModeIncremental, Options: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Mode() != grminer.ModeIncremental || e.Incremental() == nil {
		t.Fatal("incremental engine has the wrong shape")
	}
	res, bs, err := e.ApplyBatch(grminer.Batch{Ins: []grminer.EdgeInsert{
		{Src: 0, Dst: 1, Vals: []grminer.Value{1}},
		{Src: 2, Dst: 3, Vals: []grminer.Value{1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Edges != 2 || e.Cumulative().Edges != 2 {
		t.Fatalf("batch stats: %+v cumulative %+v", bs, e.Cumulative())
	}
	ref, err := grminer.Mine(e.Graph(), e.Options())
	if err != nil {
		t.Fatal(err)
	}
	sameTopK(t, ref, res, "Open incremental")
	for _, s := range res.TopK {
		c, ok := e.Explain(s.GR)
		if !ok {
			t.Fatalf("maintained entry %s not explainable", s.GR.Key())
		}
		if c.LWR != s.Supp {
			t.Fatalf("Explain(%s): LWR %d vs supp %d", s.GR.Key(), c.LWR, s.Supp)
		}
	}
	if _, ok := e.Explain(grminer.GR{}); ok {
		t.Fatal("empty GR explained")
	}
}

// Open's sharded engines must reproduce the deprecated sharded entrypoints.
func TestOpenSharded(t *testing.T) {
	opt := grminer.Options{MinSupp: 2, MinScore: 0.5, K: 5}
	so := grminer.ShardOptions{Shards: 3}

	ref, err := grminer.MineSharded(grminer.ToyDating(), opt, so)
	if err != nil {
		t.Fatal(err)
	}
	e, err := grminer.Open(grminer.ToyDating(), grminer.EngineConfig{Options: opt, Shard: so})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Coordinator() == nil {
		t.Fatal("sharded engine has no coordinator")
	}
	if plan, ok := e.ShardPlan(); !ok || plan.Shards != 3 {
		t.Fatalf("ShardPlan: ok=%v plan=%+v", ok, plan)
	}
	res, err := e.Mine()
	if err != nil {
		t.Fatal(err)
	}
	sameTopK(t, ref, res, "Open sharded")

	// Incremental sharded.
	ei, err := grminer.Open(grminer.ToyDating(), grminer.EngineConfig{
		Mode: grminer.ModeIncremental, Options: opt, Shard: so,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ei.Close()
	if ei.IncrementalSharded() == nil {
		t.Fatal("incremental sharded engine has the wrong shape")
	}
	resI, _, err := ei.Apply([]grminer.EdgeInsert{{Src: 0, Dst: 1, Vals: []grminer.Value{1}}})
	if err != nil {
		t.Fatal(err)
	}
	refI, err := grminer.Mine(ei.Graph(), ei.Options())
	if err != nil {
		t.Fatal(err)
	}
	sameTopK(t, refI, resI, "Open incremental sharded")
}

// An explicit shard count below the worker list (idle daemons — almost
// certainly a mistyped flag) must surface the typed mismatch error from
// Open and every deprecated remote entrypoint. A count above the list
// multiplexes instead; the remote oracle tests in internal/rpc cover that.
func TestShardWorkerMismatch(t *testing.T) {
	g := grminer.ToyDating()
	opt := grminer.Options{MinSupp: 2, MinScore: 0.5}
	so := grminer.ShardOptions{Shards: 2}
	workers := []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}

	_, err := grminer.Open(g, grminer.EngineConfig{Options: opt, Shard: so, Workers: workers})
	var mismatch *grminer.ErrShardWorkerMismatch
	if !errors.As(err, &mismatch) {
		t.Fatalf("Open: want *ErrShardWorkerMismatch, got %v", err)
	}
	if mismatch.Shards != 2 || mismatch.Workers != 3 {
		t.Fatalf("mismatch fields: %+v", mismatch)
	}

	if _, err := grminer.MineRemote(g, opt, so, workers); !errors.As(err, &mismatch) {
		t.Errorf("MineRemote: %v", err)
	}
	if _, err := grminer.NewRemoteShardCoordinator(g, opt, so, workers); !errors.As(err, &mismatch) {
		t.Errorf("NewRemoteShardCoordinator: %v", err)
	}
	if _, err := grminer.NewIncrementalRemote(g, opt, so, workers); !errors.As(err, &mismatch) {
		t.Errorf("NewIncrementalRemote: %v", err)
	}

	// An empty worker list stays the explicit remote-entrypoint error, not
	// a silent fall-through to a local engine.
	if _, err := grminer.MineRemote(g, opt, grminer.ShardOptions{}, nil); err == nil {
		t.Error("MineRemote accepted an empty worker list")
	}
}

// OpenStore supports only the static local variant.
func TestOpenStoreRejectsNonLocal(t *testing.T) {
	st := grminer.BuildStore(grminer.ToyDating())
	opt := grminer.Options{MinSupp: 2, MinScore: 0.5}
	if _, err := grminer.OpenStore(st, grminer.EngineConfig{Mode: grminer.ModeIncremental, Options: opt}); err == nil {
		t.Error("OpenStore accepted an incremental config")
	}
	if _, err := grminer.OpenStore(st, grminer.EngineConfig{Options: opt, Shard: grminer.ShardOptions{Shards: 2}}); err == nil {
		t.Error("OpenStore accepted a sharded config")
	}
	if _, err := grminer.OpenStore(st, grminer.EngineConfig{Options: opt, Workers: []string{"h:1"}}); err == nil {
		t.Error("OpenStore accepted a remote config")
	}
}

// The deprecated sharded wrappers must still surface core's shard-count
// validation for a zero/negative count instead of opening a local engine.
func TestDeprecatedShardedValidation(t *testing.T) {
	g := grminer.ToyDating()
	opt := grminer.Options{MinSupp: 2, MinScore: 0.5}
	if _, err := grminer.MineSharded(g, opt, grminer.ShardOptions{}); err == nil {
		t.Error("MineSharded accepted zero shards")
	}
	if _, err := grminer.NewShardCoordinator(g, opt, grminer.ShardOptions{}); err == nil {
		t.Error("NewShardCoordinator accepted zero shards")
	}
	if _, err := grminer.NewIncrementalSharded(g, opt, grminer.ShardOptions{}); err == nil {
		t.Error("NewIncrementalSharded accepted zero shards")
	}
}
