// benchgate compares a `go test -bench -benchmem` run against a committed
// baseline and exits non-zero on regression — the comparator behind the CI
// bench-gate job (DESIGN.md §7).
//
// Usage:
//
//	go test ./internal/core/ -run '^$' -bench . -benchtime 10x -count 5 -benchmem > current.txt
//	go run ./cmd/benchgate -baseline internal/bench/gate/baseline.txt current.txt
//
// Several result files (one per package) may be given; "-" reads stdin. By
// default allocs/op is gated at +10%, B/op at +25%, and ns/op is reported
// but not gated (CI wall time is noise); -ns-pct opts it in.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"grminer/internal/bench/gate"
)

func main() {
	baseline := flag.String("baseline", "internal/bench/gate/baseline.txt", "committed baseline file")
	allocsPct := flag.Float64("allocs-pct", 0.10, "allowed allocs/op regression fraction (negative disables)")
	bytesPct := flag.Float64("bytes-pct", 0.25, "allowed B/op regression fraction (negative disables)")
	nsPct := flag.Float64("ns-pct", -1, "allowed ns/op regression fraction (negative disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchgate [flags] current.txt [current2.txt ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := parseFiles(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := parseFiles(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	th := gate.Thresholds{NsPct: *nsPct, BytesPct: *bytesPct, AllocsPct: *allocsPct}
	rep := gate.Compare(gate.Medians(base), gate.Medians(cur), th)
	rep.Format(os.Stdout)
	if !rep.OK() {
		os.Exit(1)
	}
}

// parseFiles parses one suite out of the concatenation of the given files
// ("-" for stdin).
func parseFiles(paths ...string) (gate.Suite, error) {
	readers := make([]io.Reader, 0, len(paths))
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for _, p := range paths {
		if p == "-" {
			readers = append(readers, os.Stdin)
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		closers = append(closers, f)
		readers = append(readers, f)
	}
	return gate.Parse(io.MultiReader(readers...))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
