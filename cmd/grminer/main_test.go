package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grminer"
)

func TestLoadGraphBuiltins(t *testing.T) {
	toy, err := loadGraph("toy", "", "", "", 0, 0, 1)
	if err != nil || toy.NumNodes() != 14 {
		t.Fatalf("toy: %v", err)
	}
	pokec, err := loadGraph("pokec", "", "", "", 500, 4, 1)
	if err != nil || pokec.NumNodes() != 500 || pokec.NumEdges() != 2000 {
		t.Fatalf("pokec: %v (%d nodes %d edges)", err, pokec.NumNodes(), pokec.NumEdges())
	}
	if _, err := loadGraph("nope", "", "", "", 0, 0, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := loadGraph("", "", "", "", 0, 0, 1); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestLoadGraphFiles(t *testing.T) {
	dir := t.TempDir()
	g := grminer.ToyDating()
	sp := filepath.Join(dir, "s.txt")
	np := filepath.Join(dir, "n.tsv")
	ep := filepath.Join(dir, "e.tsv")
	if err := grminer.SaveFiles(g, sp, np, ep); err != nil {
		t.Fatal(err)
	}
	got, err := loadGraph("", sp, np, ep, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 30 {
		t.Errorf("loaded %d edges", got.NumEdges())
	}
}

func TestWriteResults(t *testing.T) {
	g := grminer.ToyDating()
	res, err := grminer.Mine(g, grminer.Options{MinSupp: 2, MinScore: 0.9, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tsv := filepath.Join(dir, "out.tsv")
	if err := writeResults(res, g, tsv, "tsv"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tsv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "rank\tgr\t") {
		t.Errorf("tsv content: %q", string(data[:20]))
	}
	jsonPath := filepath.Join(dir, "out.json")
	if err := writeResults(res, g, jsonPath, "json"); err != nil {
		t.Fatal(err)
	}
	if err := writeResults(res, g, filepath.Join(dir, "x"), "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
