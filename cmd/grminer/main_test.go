package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grminer"
)

func TestLoadGraphBuiltins(t *testing.T) {
	toy, err := loadGraph("toy", "", "", "", 0, 0, 1)
	if err != nil || toy.NumNodes() != 14 {
		t.Fatalf("toy: %v", err)
	}
	pokec, err := loadGraph("pokec", "", "", "", 500, 4, 1)
	if err != nil || pokec.NumNodes() != 500 || pokec.NumEdges() != 2000 {
		t.Fatalf("pokec: %v (%d nodes %d edges)", err, pokec.NumNodes(), pokec.NumEdges())
	}
	if _, err := loadGraph("nope", "", "", "", 0, 0, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := loadGraph("", "", "", "", 0, 0, 1); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestLoadGraphFiles(t *testing.T) {
	dir := t.TempDir()
	g := grminer.ToyDating()
	sp := filepath.Join(dir, "s.txt")
	np := filepath.Join(dir, "n.tsv")
	ep := filepath.Join(dir, "e.tsv")
	if err := grminer.SaveFiles(g, sp, np, ep); err != nil {
		t.Fatal(err)
	}
	got, err := loadGraph("", sp, np, ep, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 30 {
		t.Errorf("loaded %d edges", got.NumEdges())
	}
}

func TestWriteResults(t *testing.T) {
	g := grminer.ToyDating()
	res, err := grminer.Mine(g, grminer.Options{MinSupp: 2, MinScore: 0.9, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tsv := filepath.Join(dir, "out.tsv")
	if err := writeResults(res, g, tsv, "tsv"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tsv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "rank\tgr\t") {
		t.Errorf("tsv content: %q", string(data[:20]))
	}
	jsonPath := filepath.Join(dir, "out.json")
	if err := writeResults(res, g, jsonPath, "json"); err != nil {
		t.Fatal(err)
	}
	if err := writeResults(res, g, filepath.Join(dir, "x"), "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestParseFollowLine(t *testing.T) {
	e, _, isDel, err := parseFollowLine("3\t7\t1", 1)
	if err != nil || isDel || e.Src != 3 || e.Dst != 7 || len(e.Vals) != 1 || e.Vals[0] != 1 {
		t.Fatalf("parseFollowLine: %+v del=%v, %v", e, isDel, err)
	}
	if _, _, _, err := parseFollowLine("3 7 2 9", 2); err != nil {
		t.Errorf("space-separated line rejected: %v", err)
	}
	// Retractions: the "-" prefix as its own field or glued to the source.
	for _, line := range []string{"- 3 7 1", "-3 7 1", "  -\t3\t7\t1"} {
		_, d, isDel, err := parseFollowLine(line, 1)
		if err != nil || !isDel || d.Src != 3 || d.Dst != 7 || len(d.Vals) != 1 || d.Vals[0] != 1 {
			t.Fatalf("retraction %q: %+v del=%v, %v", line, d, isDel, err)
		}
	}
	// Out-of-range values must error, not wrap through the uint16
	// conversion into a silently valid small value; a lone "-" or a doubly
	// negative source is malformed, not a retraction of a retraction.
	for _, bad := range []string{"3", "3 7", "3 x 1", "a 7 1", "3 7 z", "3 7 1 1",
		"3 7 -65535", "3 7 -1", "3 7 65537", "-", "- 3 7", "--3 7 1", "- -3 7 1"} {
		if _, _, _, err := parseFollowLine(bad, 1); err == nil {
			t.Errorf("malformed line %q accepted", bad)
		}
	}
}

func TestRunFollowStream(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "edges.stream")
	// Two batches: a blank-line commit, then an EOF commit; comments ignored.
	if err := os.WriteFile(stream, []byte("# new dating edges\n0\t1\t1\n2\t3\t1\n\n4\t5\t1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g := grminer.ToyDating()
	opt := grminer.Options{MinSupp: 2, MinScore: 0.5, K: 5, DynamicFloor: true}
	outPath := filepath.Join(dir, "final.json")
	in, closeIn, err := openFollowStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	defer closeIn()
	eng, err := newEngine(g, opt, grminer.ShardOptions{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := runFollow(eng, g, grminer.NhpMetric, in, 0, true, outPath, "json"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 33 {
		t.Errorf("followed graph has %d edges, want 33", g.NumEdges())
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Errorf("-out not honoured in follow mode: %v", err)
	}
}

// A -follow stream mixing insertions and "-"-prefixed retractions must flow
// through the engine and leave the maintained result equal to a fresh batch
// mine of the surviving graph.
func TestRunFollowRetractionStream(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "changes.stream")
	// Toy edge 0 -> 1 exists with S=1 (the dating schema's single edge
	// attribute); insert two edges, retract one pre-existing edge and one
	// just-committed edge in a LATER batch (retractions resolve pre-batch).
	content := "0\t1\t1\n2\t3\t1\n\n- 2\t3\t1\n-0 1 1\n4\t5\t1\n"
	if err := os.WriteFile(stream, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g := grminer.ToyDating()
	before := g.NumLiveEdges()
	in, closeIn, err := openFollowStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	defer closeIn()
	eng, err := newEngine(g, grminer.Options{MinSupp: 2, MinScore: 0.5, K: 5, DynamicFloor: true}, grminer.ShardOptions{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := runFollow(eng, g, grminer.NhpMetric, in, 0, true, "", ""); err != nil {
		t.Fatal(err)
	}
	// +3 inserts, -2 retractions.
	if got := g.NumLiveEdges(); got != before+1 {
		t.Fatalf("stream left %d live edges, want %d", got, before+1)
	}
	if c := eng.Cumulative(); c.Edges != 3 || c.Deleted != 2 {
		t.Fatalf("cumulative +%d/-%d, want +3/-2", c.Edges, c.Deleted)
	}
	ref, err := grminer.Mine(g, eng.Options())
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Result().TopK
	if len(got) != len(ref.TopK) {
		t.Fatalf("follow kept %d GRs, batch mine %d", len(got), len(ref.TopK))
	}
	for i := range got {
		if got[i].GR.Key() != ref.TopK[i].GR.Key() || got[i].Score != ref.TopK[i].Score {
			t.Fatalf("rank %d diverged: %v vs %v", i, got[i], ref.TopK[i])
		}
	}
}

// A retraction of a never-inserted edge must abort the run without mutating
// the graph — the atomic-rejection contract extends to the new syntax.
func TestRunFollowRejectsUnmatchedRetraction(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "bad.stream")
	if err := os.WriteFile(stream, []byte("0\t1\t1\n- 0\t0\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g := grminer.ToyDating()
	edges := g.NumLiveEdges()
	in, closeIn, err := openFollowStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	defer closeIn()
	eng, err := newEngine(g, grminer.Options{MinSupp: 2, MinScore: 0.5, K: 5}, grminer.ShardOptions{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := runFollow(eng, g, grminer.NhpMetric, in, 0, false, "", ""); err == nil {
		t.Fatal("unmatched retraction accepted")
	}
	if g.NumLiveEdges() != edges {
		t.Fatalf("graph mutated to %d live edges despite rejection", g.NumLiveEdges())
	}
}

// Malformed streams must abort with an error — a bad line, and a
// well-formed line the schema rejects — without applying the bad batch.
func TestRunFollowRejectsMalformedInput(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad-line.stream":   "0\t1\t1\nnot an edge\n",
		"bad-edge.stream":   "0\t1\t9\n",  // edge value out of domain
		"bad-node.stream":   "0\t99\t1\n", // destination out of range
		"bad-fields.stream": "0\t1\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		g := grminer.ToyDating()
		edges := g.NumEdges()
		in, closeIn, err := openFollowStream(path)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := newEngine(g, grminer.Options{MinSupp: 2, MinScore: 0.5, K: 5}, grminer.ShardOptions{}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := runFollow(eng, g, grminer.NhpMetric, in, 0, false, "", ""); err == nil {
			t.Errorf("%s: accepted", name)
		}
		closeIn()
		if g.NumEdges() != edges {
			t.Errorf("%s: graph mutated to %d edges despite rejection", name, g.NumEdges())
		}
	}
	if _, _, err := openFollowStream(filepath.Join(dir, "missing.stream")); err == nil {
		t.Error("missing stream file accepted")
	}
}

// Batch loading must fail loudly on malformed edge files instead of mining
// the partial graph.
func TestLoadGraphRejectsMalformedEdges(t *testing.T) {
	dir := t.TempDir()
	g := grminer.ToyDating()
	sp := filepath.Join(dir, "s.txt")
	np := filepath.Join(dir, "n.tsv")
	ep := filepath.Join(dir, "e.tsv")
	if err := grminer.SaveFiles(g, sp, np, ep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ep)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range map[string]string{
		"truncated": string(data) + "5\t6\n",
		"garbage":   string(data) + "5\tsix\t1\n",
		"domain":    string(data) + "5\t6\t42\n",
		"wrap":      string(data) + "5\t6\t-65535\n", // would wrap to a valid 1
	} {
		bad := filepath.Join(dir, name+".tsv")
		if err := os.WriteFile(bad, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadGraph("", sp, np, bad, 0, 0, 1); err == nil {
			t.Errorf("%s edge file accepted", name)
		}
	}
}

// -follow with -shards routes every streamed batch through the sharded
// incremental engine; the maintained result must match both the
// single-store follow and a fresh batch mine of the grown graph.
func TestRunFollowShardedStream(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "edges.stream")
	if err := os.WriteFile(stream, []byte("0\t1\t1\n2\t3\t1\n\n4\t5\t1\n6\t7\t1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	opt := grminer.Options{MinSupp: 2, MinScore: 0.5, K: 5, DynamicFloor: true}
	for _, strategy := range []grminer.ShardStrategy{grminer.ShardBySource, grminer.ShardByRHS} {
		g := grminer.ToyDating()
		in, closeIn, err := openFollowStream(stream)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := newEngine(g, opt, grminer.ShardOptions{Shards: 3, Strategy: strategy}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := runFollow(eng, g, grminer.NhpMetric, in, 0, false, "", ""); err != nil {
			t.Fatal(err)
		}
		closeIn()
		if g.NumEdges() != 34 {
			t.Fatalf("%s: followed graph has %d edges, want 34", strategy, g.NumEdges())
		}
		sharded, ok := eng.(*grminer.IncrementalSharded)
		if !ok {
			t.Fatalf("%s: newEngine did not build a sharded engine", strategy)
		}
		total := 0
		for _, n := range sharded.Plan().Edges {
			total += n
		}
		if total != 34 {
			t.Fatalf("%s: shards hold %d edges, want 34", strategy, total)
		}
		ref, err := grminer.Mine(g, eng.Options())
		if err != nil {
			t.Fatal(err)
		}
		got := eng.Result().TopK
		if len(got) != len(ref.TopK) {
			t.Fatalf("%s: sharded follow kept %d GRs, batch mine %d", strategy, len(got), len(ref.TopK))
		}
		for i := range got {
			if got[i].GR.Key() != ref.TopK[i].GR.Key() || got[i].Score != ref.TopK[i].Score {
				t.Fatalf("%s: rank %d diverged: %v vs %v", strategy, i, got[i], ref.TopK[i])
			}
		}
	}
}
