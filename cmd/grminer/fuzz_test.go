package main

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseFollowLine hardens the -follow stream parser: arbitrary input —
// including the new "-" retraction prefix in every mangled form — must never
// panic, and every accepted line must satisfy the parser's own contract
// (exactly one value per edge attribute, values inside the uint16 range,
// insert and retraction mutually exclusive). Accepted inserts additionally
// round-trip: re-rendering the parsed fields and re-parsing yields the same
// edge.
func FuzzParseFollowLine(f *testing.F) {
	f.Add("3\t7\t1", 1)
	f.Add("3 7 2 9", 2)
	f.Add("- 3 7 1", 1)
	f.Add("-3 7 1", 1)
	f.Add("  -\t12\t7\t0", 1)
	f.Add("0 1", 0)
	f.Add("- 0 1", 0)
	f.Add("3 7 -1", 1)
	f.Add("3 7 65537", 1)
	f.Add("--3 7 1", 1)
	f.Add("- -3 7 1", 1)
	f.Add("# comment-ish", 1)
	f.Add("", 0)
	f.Add("-", 1)
	f.Add("∞ ∞ ∞", 1)
	f.Fuzz(func(t *testing.T, line string, edgeAttrs int) {
		if edgeAttrs > 64 {
			edgeAttrs %= 64 // schema edge-attr counts are tiny; keep loops sane
		}
		ins, del, isDel, err := parseFollowLine(line, edgeAttrs)
		if err != nil {
			return
		}
		if edgeAttrs < 0 {
			t.Fatalf("accepted a negative edge attribute count %d", edgeAttrs)
		}
		vals := ins.Vals
		if isDel {
			vals = del.Vals
			if ins.Vals != nil {
				t.Fatalf("retraction also produced an insert: %+v / %+v", ins, del)
			}
		}
		if len(vals) != edgeAttrs {
			t.Fatalf("%q: %d values for %d edge attributes", line, len(vals), edgeAttrs)
		}
		if !isDel {
			// Round-trip: the canonical rendering of an accepted insert
			// parses back to the identical edge.
			parts := []string{fmt.Sprint(ins.Src), fmt.Sprint(ins.Dst)}
			for _, v := range vals {
				parts = append(parts, fmt.Sprint(int(v)))
			}
			ins2, _, isDel2, err := parseFollowLine(strings.Join(parts, "\t"), edgeAttrs)
			if err != nil || isDel2 {
				t.Fatalf("round-trip of %q failed: %+v, del=%v, %v", line, ins2, isDel2, err)
			}
			if ins2.Src != ins.Src || ins2.Dst != ins.Dst || len(ins2.Vals) != len(ins.Vals) {
				t.Fatalf("round-trip of %q changed the edge: %+v vs %+v", line, ins, ins2)
			}
			for i := range ins.Vals {
				if ins2.Vals[i] != ins.Vals[i] {
					t.Fatalf("round-trip of %q changed value %d", line, i)
				}
			}
		}
	})
}
