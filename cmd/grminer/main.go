// Command grminer mines top-k group relationships from an attributed
// network, ranked by non-homophily preference (or any other built-in
// metric).
//
// Usage:
//
//	grminer -data toy
//	grminer -data pokec -nodes 20000 -minsupp 500 -minnhp 0.5 -k 20
//	grminer -data pokec -nodes 200000 -auto -stats
//	grminer -schema s.txt -nodes-file n.tsv -edges-file e.tsv -minsupp 50
//	grminer -data dblp -query "(A:DB) -[S:often]-> (A:DM)"
//
// With -query the tool reports supp/conf/nhp of one GR instead of mining
// (the hypothesis-workbench mode of the paper's Remark 3).
package main

import (
	"flag"
	"fmt"
	"os"

	"grminer"
)

func main() {
	var (
		data      = flag.String("data", "", "built-in dataset: toy | pokec | dblp")
		schemaF   = flag.String("schema", "", "schema file (with -nodes-file/-edges-file)")
		nodesF    = flag.String("nodes-file", "", "node attribute TSV")
		edgesF    = flag.String("edges-file", "", "edge TSV")
		nodes     = flag.Int("nodes", 20000, "synthetic dataset size (pokec)")
		deg       = flag.Float64("deg", 15, "synthetic average out-degree (pokec)")
		seed      = flag.Int64("seed", 1, "generator seed")
		minSupp   = flag.Int("minsupp", 50, "absolute minimum support")
		minScore  = flag.Float64("minnhp", 0.5, "minimum score (minNhp)")
		k         = flag.Int("k", 20, "top-k (0 = unlimited)")
		metric    = flag.String("metric", "nhp", "ranking metric: nhp|conf|laplace|gain|piatetsky-shapiro|conviction|lift")
		dynamic   = flag.Bool("dynamic", true, "GRMiner(k): upgrade the pruning floor to the k-th best score")
		trivial   = flag.Bool("include-trivial", false, "also report trivial homophily GRs")
		query     = flag.String("query", "", "evaluate one GR instead of mining, e.g. \"(SEX:M) -> (SEX:F)\"")
		showStats = flag.Bool("stats", false, "print search statistics")
		out       = flag.String("out", "", "also write results to this file")
		format    = flag.String("format", "tsv", "output file format: tsv | json")
		workers   = flag.Int("workers", 0, "parallel mining workers (0 = sequential unless -auto)")
		auto      = flag.Bool("auto", false, "auto-tune workers and descriptor caps from the input size")
		procs     = flag.Int("procs", 0, "CPU budget for -auto planning (0 = all cores)")
	)
	flag.Parse()

	g, err := loadGraph(*data, *schemaF, *nodesF, *edgesF, *nodes, *deg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grminer:", err)
		os.Exit(1)
	}
	gs := g.Stats()
	fmt.Printf("network: %d nodes, %d edges, %d node attrs, %d edge attrs\n",
		gs.Nodes, gs.Edges, gs.NodeAttrs, gs.EdgeAttrs)

	if *query != "" {
		wb := grminer.NewWorkbench(g)
		rep, err := wb.QueryText(*query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grminer:", err)
			os.Exit(1)
		}
		fmt.Println(rep.String(g.Schema()))
		return
	}

	m, err := grminer.MetricByName(*metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grminer:", err)
		os.Exit(1)
	}
	opt := grminer.Options{
		MinSupp:        *minSupp,
		MinScore:       *minScore,
		K:              *k,
		DynamicFloor:   *dynamic && *k > 0,
		Metric:         m,
		IncludeTrivial: *trivial,
		Parallelism:    *workers,
	}
	st := grminer.BuildStore(g)
	if *auto {
		plan := grminer.AutoPlan(st, *procs, opt)
		opt = plan.Apply(opt)
		fmt.Println(plan)
	}
	res, err := grminer.MineStore(st, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grminer:", err)
		os.Exit(1)
	}
	fmt.Printf("top-%d GRs by %s (minSupp=%d, threshold=%.2f):\n", *k, m.Name, *minSupp, *minScore)
	for i, s := range res.TopK {
		fmt.Printf("%3d. %-60s %s=%6.2f%% supp=%-8d conf=%5.1f%%\n",
			i+1, s.GR.Format(g.Schema()), m.Name, 100*s.Score, s.Supp, 100*s.Conf)
	}
	if *showStats {
		fmt.Printf("stats: examined=%d trivial=%d prunedSupp=%d prunedScore=%d blocked=%d partitions=%d in %v\n",
			res.Stats.Examined, res.Stats.TrivialSeen, res.Stats.PrunedSupp,
			res.Stats.PrunedScore, res.Stats.Blocked, res.Stats.PartitionCalls, res.Stats.Duration)
	}
	if *out != "" {
		if err := writeResults(res, g, *out, *format); err != nil {
			fmt.Fprintln(os.Stderr, "grminer:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", *out, *format)
	}
}

func writeResults(res *grminer.Result, g *grminer.Graph, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "tsv":
		return res.WriteTSV(f, g.Schema())
	case "json":
		return res.WriteJSON(f, g.Schema())
	default:
		return fmt.Errorf("unknown format %q (want tsv or json)", format)
	}
}

func loadGraph(data, schemaF, nodesF, edgesF string, nodes int, deg float64, seed int64) (*grminer.Graph, error) {
	switch {
	case data == "toy":
		return grminer.ToyDating(), nil
	case data == "pokec":
		cfg := grminer.DefaultPokecConfig()
		cfg.Nodes = nodes
		cfg.AvgOutDegree = deg
		cfg.Seed = seed
		return grminer.Pokec(cfg), nil
	case data == "dblp":
		cfg := grminer.DefaultDBLPConfig()
		cfg.Seed = seed
		return grminer.DBLP(cfg), nil
	case data != "":
		return nil, fmt.Errorf("unknown dataset %q (want toy, pokec, or dblp)", data)
	case schemaF != "" && nodesF != "" && edgesF != "":
		return grminer.LoadFiles(schemaF, nodesF, edgesF)
	default:
		return nil, fmt.Errorf("need -data or all of -schema/-nodes-file/-edges-file (see -h)")
	}
}
