// Command grminer mines top-k group relationships from an attributed
// network, ranked by non-homophily preference (or any other built-in
// metric).
//
// Usage:
//
//	grminer -data toy
//	grminer -data pokec -nodes 20000 -minsupp 500 -minnhp 0.5 -k 20
//	grminer -data pokec -nodes 200000 -auto -stats
//	grminer -schema s.txt -nodes-file n.tsv -edges-file e.tsv -minsupp 50
//	grminer -data dblp -query "(A:DB) -[S:often]-> (A:DM)"
//	grminer -data pokec -nodes 20000 -follow new-edges.tsv -batch 500
//	generator | grminer -data toy -minsupp 2 -follow -
//	grminer -data pokec -nodes 20000 -workers 127.0.0.1:9401,127.0.0.1:9402
//
// With -workers host:port,... the shards live on remote shardd daemons
// (cmd/shardd): each worker receives its shard at session start and mines
// it behind the internal/rpc protocol; a plain integer keeps the old
// meaning of in-process parallel mining workers. Remote mining composes
// with -follow: routed batches stream to the owning worker, which
// maintains its own candidate pool.
//
// With -query the tool reports supp/conf/nhp of one GR instead of mining
// (the hypothesis-workbench mode of the paper's Remark 3).
//
// With -follow the tool mines the loaded network once, then ingests edge
// changes from a stream (a file, or stdin with "-") through the incremental
// engine, reporting the maintained top-k's churn per batch. Stream lines
// use the edge-file format ("src dst v1 v2...", whitespace separated) for
// insertions; a "-" prefix ("- src dst v1 v2..." or "-src dst v1 v2...")
// retracts one live edge matching those endpoints and values exactly,
// resolved against the graph as it stood before the batch. A blank line
// commits the pending batch, -batch N also commits every N changes, and
// EOF commits the remainder. Malformed lines, edges the schema rejects, and
// retractions matching no live edge abort the run with a non-zero exit
// before the bad batch mutates anything. -pool-cap N bounds the engine's
// tracked candidate pool (single-store -follow only); results stay exact
// through re-mine-on-underflow.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"grminer"
	"grminer/internal/serve/apiv1"
)

// info receives the informational output (banners, plans, batch progress).
// It is stdout normally and stderr under -json, so piped JSON stays clean.
var info io.Writer = os.Stdout

// jsonOut switches the final top-k to the versioned v1 JSON schema.
var jsonOut bool

func main() {
	var (
		data      = flag.String("data", "", "built-in dataset: toy | pokec | dblp")
		schemaF   = flag.String("schema", "", "schema file (with -nodes-file/-edges-file)")
		nodesF    = flag.String("nodes-file", "", "node attribute TSV")
		edgesF    = flag.String("edges-file", "", "edge TSV")
		nodes     = flag.Int("nodes", 20000, "synthetic dataset size (pokec)")
		deg       = flag.Float64("deg", 15, "synthetic average out-degree (pokec)")
		seed      = flag.Int64("seed", 1, "generator seed")
		minSupp   = flag.Int("minsupp", 50, "absolute minimum support")
		minScore  = flag.Float64("minnhp", 0.5, "minimum score (minNhp)")
		k         = flag.Int("k", 20, "top-k (0 = unlimited)")
		metric    = flag.String("metric", "nhp", "ranking metric: nhp|conf|laplace|gain|piatetsky-shapiro|conviction|lift")
		dynamic   = flag.Bool("dynamic", true, "GRMiner(k): upgrade the pruning floor to the k-th best score")
		trivial   = flag.Bool("include-trivial", false, "also report trivial homophily GRs")
		query     = flag.String("query", "", "evaluate one GR instead of mining, e.g. \"(SEX:M) -> (SEX:F)\"")
		showStats = flag.Bool("stats", false, "print search statistics")
		out       = flag.String("out", "", "also write results to this file")
		format    = flag.String("format", "tsv", "output file format: tsv | json")
		workers   = flag.String("workers", "0", "parallel mining workers (0 = sequential unless -auto), or comma-separated shardd addresses (host:port,...) to mine one shard per remote worker")
		auto      = flag.Bool("auto", false, "auto-tune workers and descriptor caps from the input size")
		procs     = flag.Int("procs", 0, "CPU budget for -auto planning (0 = all cores)")
		follow    = flag.String("follow", "", "after the initial mine, stream edge insertions (\"src dst vals...\") and retractions (\"- src dst vals...\") from this file (\"-\" = stdin) through the incremental engine")
		batchSize = flag.Int("batch", 0, "in -follow mode, commit a batch every N changes in addition to blank-line commits (0 = blank lines/EOF only)")
		poolCap   = flag.Int("pool-cap", 0, "in single-store -follow mode, bound the tracked candidate pool to N entries (0 = unbounded; exact via re-mine-on-underflow)")
		shards    = flag.Int("shards", 0, "mine over N deterministic edge shards merged by the shard coordinator (0 = single store; may exceed the -workers address count to multiplex)")
		standby   = flag.String("standby", "", "comma-separated standby shardd addresses for failover replacement (remote shards only)")
		shardBy   = flag.String("shard-by", "src", "shard routing strategy: src (hash of source node) | rhs (hash of destination attribute row)")
		chkEvery  = flag.Int("checkpoint-interval", grminer.DefaultCheckpointInterval, "checkpoint each shard's worker state every N acknowledged -follow batches, truncating its replay log so recovery replays at most N batches (0 = never checkpoint, full replay; sharded -follow only)")
		jsonFlag  = flag.Bool("json", false, "write the top-k as versioned v1 API JSON to stdout (informational output moves to stderr)")
	)
	flag.Parse()
	if *jsonFlag {
		jsonOut = true
		info = os.Stderr
	}

	strategy, err := grminer.ParseShardStrategy(*shardBy)
	if err != nil {
		fail(err)
	}
	// -workers is either a parallel worker count ("4") or a remote shardd
	// address list ("host:port,host:port"). An explicit -shards below the
	// address count (idle daemons) surfaces as ErrShardWorkerMismatch from
	// the facade; above it, the extra shards multiplex onto the daemons.
	parWorkers, remote, err := parseWorkersFlag(*workers)
	if err != nil {
		fail(err)
	}
	standbys, err := parseAddrList("-standby", *standby)
	if err != nil {
		fail(err)
	}
	if len(standbys) > 0 && len(remote) == 0 {
		fmt.Fprintln(os.Stderr, "grminer: -standby needs remote shards (-workers host:port,...)")
		os.Exit(1)
	}
	shardBySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shard-by" {
			shardBySet = true
		}
	})
	if shardBySet && *shards <= 0 && len(remote) == 0 {
		fmt.Fprintln(os.Stderr, "grminer: -shard-by has no effect without -shards N (N > 0) or -workers")
		os.Exit(1)
	}
	if *poolCap > 0 {
		if *follow == "" {
			fmt.Fprintln(os.Stderr, "grminer: -pool-cap has no effect without -follow")
			os.Exit(1)
		}
		if *shards > 0 || len(remote) > 0 {
			fmt.Fprintln(os.Stderr, "grminer: -pool-cap bounds the single-store incremental pool; sharded pools are support-gated and cannot be bounded without losing offer completeness")
			os.Exit(1)
		}
	}
	if *chkEvery < 0 {
		fmt.Fprintln(os.Stderr, "grminer: -checkpoint-interval must be >= 0 (0 disables checkpointing)")
		os.Exit(1)
	}
	var shardOpt grminer.ShardOptions
	if *shards > 0 || len(remote) > 0 {
		shardOpt = grminer.ShardOptions{Shards: *shards, Strategy: strategy,
			CheckpointInterval: checkpointInterval(*chkEvery)}
	}

	g, err := loadGraph(*data, *schemaF, *nodesF, *edgesF, *nodes, *deg, *seed)
	if err != nil {
		fail(err)
	}
	gs := g.Stats()
	fmt.Fprintf(info, "network: %d nodes, %d edges, %d node attrs, %d edge attrs\n",
		gs.Nodes, gs.Edges, gs.NodeAttrs, gs.EdgeAttrs)

	if *query != "" {
		wb := grminer.NewWorkbench(g)
		rep, err := wb.QueryText(*query)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.String(g.Schema()))
		return
	}

	m, err := grminer.MetricByName(*metric)
	if err != nil {
		fail(err)
	}
	opt := grminer.Options{
		MinSupp:        *minSupp,
		MinScore:       *minScore,
		K:              *k,
		DynamicFloor:   *dynamic && *k > 0,
		Metric:         m,
		IncludeTrivial: *trivial,
		Parallelism:    parWorkers,
		PoolCap:        *poolCap,
	}
	if *follow != "" {
		if *auto {
			plan := grminer.AutoPlanGraph(g, *procs, opt)
			opt = plan.Apply(opt)
			fmt.Fprintln(info, plan)
		}
		// Open the stream before the (possibly long) initial mine so a bad
		// path fails instantly.
		in, closeIn, err := openFollowStream(*follow)
		if err != nil {
			fail(err)
		}
		defer closeIn()
		eng, err := newEngine(g, opt, shardOpt, remote, standbys)
		if err != nil {
			fail(err)
		}
		if closer, ok := eng.(interface{ Close() error }); ok {
			defer closer.Close()
		}
		if err := runFollow(eng, g, m, in, *batchSize, *showStats, *out, *format); err != nil {
			fail(err)
		}
		return
	}
	// One-shot mining: every mode × topology goes through the facade.
	eng, err := grminer.Open(g, grminer.EngineConfig{
		Options:  opt,
		Shard:    shardOpt,
		Workers:  remote,
		Standbys: standbys,
		Auto:     *auto,
		Procs:    *procs,
	})
	if err != nil {
		fail(err)
	}
	defer eng.Close()
	if len(remote) > 0 {
		fmt.Fprintf(info, "remote workers: %s\n", strings.Join(remote, " "))
	}
	if plan, planned := eng.AutoPlan(); planned {
		fmt.Fprintln(info, plan)
	}
	if sp, sharded := eng.ShardPlan(); sharded {
		fmt.Fprintln(info, sp)
	}
	res, err := eng.Mine()
	if err != nil {
		fail(err)
	}
	printTopK(res, g, m)
	if *showStats {
		fmt.Fprintf(info, "stats: examined=%d trivial=%d prunedSupp=%d prunedScore=%d blocked=%d partitions=%d in %v\n",
			res.Stats.Examined, res.Stats.TrivialSeen, res.Stats.PrunedSupp,
			res.Stats.PrunedScore, res.Stats.Blocked, res.Stats.PartitionCalls, res.Stats.Duration)
		if res.Stats.ShardOffers > 0 {
			fmt.Fprintf(info, "shard protocol: offers=%d prunedGlobal=%d round2-requests=%d (one-round bound: %d)\n",
				res.Stats.ShardOffers, res.Stats.PrunedGlobal,
				res.Stats.ExactCountRequests, res.Stats.OneRoundGapFill)
		}
	}
	if *out != "" {
		if err := writeResults(res, g, *out, *format); err != nil {
			fail(err)
		}
		fmt.Fprintf(info, "wrote %s (%s)\n", *out, *format)
	}
}

// fail reports a fatal error and exits; a shard/worker contradiction names
// the flags involved.
func fail(err error) {
	var mismatch *grminer.ErrShardWorkerMismatch
	if errors.As(err, &mismatch) {
		fmt.Fprintf(os.Stderr, "grminer: -shards %d leaves %d of the -workers addresses idle (raise -shards to at least %d to use every daemon, or drop -shards to default to one per worker)\n",
			mismatch.Shards, mismatch.Workers-mismatch.Shards, mismatch.Workers)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "grminer:", err)
	os.Exit(1)
}

func printTopK(res *grminer.Result, g *grminer.Graph, m grminer.Metric) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(apiv1.TopKFromResult(res, g.Schema(), 0)); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("top-%d GRs by %s (minSupp=%d, threshold=%.2f):\n",
		res.Options.K, m.Name, res.Options.MinSupp, res.Options.MinScore)
	for i, s := range res.TopK {
		fmt.Printf("%3d. %-60s %s=%6.2f%% supp=%-8d conf=%5.1f%%\n",
			i+1, s.GR.Format(g.Schema()), m.Name, 100*s.Score, s.Supp, 100*s.Conf)
	}
}

// parseWorkersFlag splits the overloaded -workers value: a plain integer is
// the parallel miner's worker count, anything with a ':' is a comma-
// separated shardd address list for remote mining.
func parseWorkersFlag(v string) (parallelism int, remote []string, err error) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, nil, nil
	}
	if n, errInt := strconv.Atoi(v); errInt == nil {
		if n < 0 {
			return 0, nil, fmt.Errorf("-workers %d: negative worker count", n)
		}
		return n, nil, nil
	}
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			remote = append(remote, a)
		}
	}
	if len(remote) == 0 {
		return 0, nil, fmt.Errorf("-workers %q: want a worker count or host:port addresses", v)
	}
	for _, a := range remote {
		if !strings.Contains(a, ":") {
			return 0, nil, fmt.Errorf("-workers address %q: want host:port", a)
		}
	}
	return 0, remote, nil
}

// checkpointInterval maps the -checkpoint-interval flag value onto
// ShardOptions.CheckpointInterval, where zero means "use the default" and
// disabling is spelled negative.
func checkpointInterval(flagValue int) int {
	if flagValue == 0 {
		return -1
	}
	return flagValue
}

// parseAddrList splits a comma-separated host:port list, validating each
// entry.
func parseAddrList(flagName, v string) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		if !strings.Contains(a, ":") {
			return nil, fmt.Errorf("%s address %q: want host:port", flagName, a)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// incrementalEngine is the slice of the incremental API runFollow drives;
// the single-store engine and the sharded engine both implement it.
type incrementalEngine interface {
	ApplyBatch(grminer.Batch) (*grminer.Result, grminer.IncStats, error)
	Result() *grminer.Result
	Options() grminer.Options
	Cumulative() grminer.IncStats
}

// newEngine seeds the incremental engine for -follow through the facade:
// remote sharded when -workers lists shardd daemons, in-process sharded
// when -shards is set (batches then route to the owning shard),
// single-store otherwise. It returns the opened engine's concrete variant,
// which carries the full incremental surface (Plan, Close).
func newEngine(g *grminer.Graph, opt grminer.Options, so grminer.ShardOptions, remote, standbys []string) (incrementalEngine, error) {
	e, err := grminer.Open(g, grminer.EngineConfig{
		Mode:     grminer.ModeIncremental,
		Options:  opt,
		Shard:    so,
		Workers:  remote,
		Standbys: standbys,
	})
	if err != nil {
		return nil, err
	}
	if sharded := e.IncrementalSharded(); sharded != nil {
		if len(remote) > 0 {
			fmt.Fprintf(info, "remote workers: %s\n", strings.Join(remote, " "))
		}
		fmt.Fprintln(info, sharded.Plan())
		return sharded, nil
	}
	return e.Incremental(), nil
}

// openFollowStream resolves a -follow source: stdin for "-", an opened
// file otherwise. The returned closer is a no-op for stdin.
func openFollowStream(src string) (io.Reader, func(), error) {
	if src == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// runFollow streams edge insertions and retractions from in through the
// (already seeded) incremental engine. Any malformed line, schema-rejected
// edge, or retraction matching no live edge aborts with an error before its
// batch is applied — the engine validates batches atomically, so no partial
// graph is ever mined.
func runFollow(inc incrementalEngine, g *grminer.Graph, m grminer.Metric, in io.Reader, batchSize int, showStats bool, outPath, outFormat string) error {
	res := inc.Result()
	fmt.Fprintf(info, "initial mine: |E|=%d, %d GRs tracked in top-%d\n",
		res.TotalEdges, len(res.TopK), inc.Options().K)

	prev := res.TopK
	batchNo := 0
	var batch grminer.Batch
	commit := func() error {
		if len(batch.Ins) == 0 && len(batch.Del) == 0 {
			return nil
		}
		batchNo++
		r, bs, err := inc.ApplyBatch(batch)
		if err != nil {
			return fmt.Errorf("batch %d rejected: %w", batchNo, err)
		}
		batch = grminer.Batch{}
		changed := grminer.TopKChanged(prev, r.TopK)
		prev = r.TopK
		work := fmt.Sprintf("remined %d/%d subtrees", bs.SubtreesRemined, bs.SubtreesTotal)
		if bs.FullRemines > 0 {
			work = "full re-mine (metric not delta-safe)"
		}
		if bs.UnderflowRemines > 0 {
			work += " +underflow re-mine"
		}
		fmt.Fprintf(info, "batch %3d: +%d/-%d edges  |E|=%-8d top-k changed=%-3d %s  %v\n",
			batchNo, bs.Edges, bs.Deleted, r.TotalEdges, changed, work, bs.Duration)
		return nil
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	ne := len(g.Schema().Edge)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			if err := commit(); err != nil {
				return err
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		ins, del, isDel, err := parseFollowLine(line, ne)
		if err != nil {
			return fmt.Errorf("follow line %d: %w", lineNo, err)
		}
		if isDel {
			batch.Del = append(batch.Del, del)
		} else {
			batch.Ins = append(batch.Ins, ins)
		}
		if batchSize > 0 && len(batch.Ins)+len(batch.Del) >= batchSize {
			if err := commit(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading follow stream: %w", err)
	}
	if err := commit(); err != nil {
		return err
	}

	final := inc.Result()
	printTopK(final, g, m)
	if showStats {
		c := inc.Cumulative()
		fmt.Fprintf(info, "stats: batches=%d edges=%d deleted=%d tracked=%d recounted=%d dropped=%d remined=%d/%d full-remines=%d spilled=%d underflow-remines=%d in %v\n",
			c.Batches, c.Edges, c.Deleted, c.Tracked, c.Recounted, c.Dropped,
			c.SubtreesRemined, c.SubtreesTotal, c.FullRemines, c.Spilled, c.UnderflowRemines, c.Duration)
	}
	if outPath != "" {
		if err := writeResults(final, g, outPath, outFormat); err != nil {
			return err
		}
		fmt.Fprintf(info, "wrote %s (%s)\n", outPath, outFormat)
	}
	return nil
}

// parseFollowLine parses one stream line. "src dst v1 v2..." (exactly one
// value per schema edge attribute, whitespace separated) inserts an edge; a
// leading "-" — either its own field ("- src dst v1...") or glued to the
// source ("-src dst v1...") — retracts one live edge matching the endpoints
// and values exactly. Note the retraction syntax claims the leading "-": a
// negative source id can no longer be spelled on a stream line (it was
// always schema-rejected at apply time anyway).
func parseFollowLine(line string, edgeAttrs int) (ins grminer.EdgeInsert, del grminer.EdgeDelete, isDel bool, err error) {
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "-") {
		isDel = true
		line = strings.TrimSpace(strings.TrimPrefix(line, "-"))
		if line == "" || strings.HasPrefix(line, "-") {
			return grminer.EdgeInsert{}, grminer.EdgeDelete{}, false, fmt.Errorf("malformed retraction %q", line)
		}
	}
	src, dst, vals, err := parseEdgeFields(line, edgeAttrs)
	if err != nil {
		return grminer.EdgeInsert{}, grminer.EdgeDelete{}, false, err
	}
	if isDel {
		return grminer.EdgeInsert{}, grminer.EdgeDelete{Src: src, Dst: dst, Vals: vals}, true, nil
	}
	return grminer.EdgeInsert{Src: src, Dst: dst, Vals: vals}, grminer.EdgeDelete{}, false, nil
}

// parseEdgeFields parses "src dst v1 v2..." with exactly one value per
// schema edge attribute.
func parseEdgeFields(line string, edgeAttrs int) (src, dst int, vals []grminer.Value, err error) {
	if edgeAttrs < 0 {
		return 0, 0, nil, fmt.Errorf("negative edge attribute count %d", edgeAttrs)
	}
	fields := strings.Fields(line)
	if len(fields) != 2+edgeAttrs {
		return 0, 0, nil, fmt.Errorf("%d fields, want %d (src dst + %d edge values)",
			len(fields), 2+edgeAttrs, edgeAttrs)
	}
	src, err1 := strconv.Atoi(fields[0])
	dst, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil {
		return 0, 0, nil, fmt.Errorf("bad endpoints %q %q", fields[0], fields[1])
	}
	for a := 0; a < edgeAttrs; a++ {
		v, err := strconv.Atoi(fields[2+a])
		if err != nil {
			return 0, 0, nil, fmt.Errorf("bad edge value %q: %v", fields[2+a], err)
		}
		// Reject values the uint16 conversion would silently wrap; the
		// schema's domain check then runs when the batch is applied.
		if v < 0 || v > 65535 {
			return 0, 0, nil, fmt.Errorf("edge value %d outside the attribute value range [0, 65535]", v)
		}
		vals = append(vals, grminer.Value(v))
	}
	return src, dst, vals, nil
}

func writeResults(res *grminer.Result, g *grminer.Graph, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "tsv":
		return res.WriteTSV(f, g.Schema())
	case "json":
		return res.WriteJSON(f, g.Schema())
	default:
		return fmt.Errorf("unknown format %q (want tsv or json)", format)
	}
}

func loadGraph(data, schemaF, nodesF, edgesF string, nodes int, deg float64, seed int64) (*grminer.Graph, error) {
	switch {
	case data == "toy":
		return grminer.ToyDating(), nil
	case data == "pokec":
		cfg := grminer.DefaultPokecConfig()
		cfg.Nodes = nodes
		cfg.AvgOutDegree = deg
		cfg.Seed = seed
		return grminer.Pokec(cfg), nil
	case data == "dblp":
		cfg := grminer.DefaultDBLPConfig()
		cfg.Seed = seed
		return grminer.DBLP(cfg), nil
	case data != "":
		return nil, fmt.Errorf("unknown dataset %q (want toy, pokec, or dblp)", data)
	case schemaF != "" && nodesF != "" && edgesF != "":
		return grminer.LoadFiles(schemaF, nodesF, edgesF)
	default:
		return nil, fmt.Errorf("need -data or all of -schema/-nodes-file/-edges-file (see -h)")
	}
}
