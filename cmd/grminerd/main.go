// Command grminerd serves live top-k group-relationship mining over a
// versioned HTTP/JSON API. It loads (or generates) a network, seeds an
// incremental mining engine through the grminer.Open facade, and then
// answers read traffic from RCU-published snapshots while POST /v1/ingest
// batches stream through the engine — readers are wait-free and never
// block the miner.
//
// Usage:
//
//	grminerd -data pokec -nodes 20000 -minsupp 500 -minnhp 0.5 -k 20
//	grminerd -addr 127.0.0.1:8080 -data toy -minsupp 2
//	grminerd -data pokec -workers 127.0.0.1:9401,127.0.0.1:9402
//	grminerd -data pokec -workers 127.0.0.1:9401,127.0.0.1:9402 \
//	    -shards 8 -standby 127.0.0.1:9409
//
// With remote shards, -shards may exceed the worker count (each shardd
// multiplexes several shard slots; run shardd with a matching -shards
// capacity) and -standby lists spare daemons that take over a shard when
// its worker dies mid-run (the coordinator replays the lost shard's
// batches; see DESIGN.md §9 and OPERATIONS.md).
//
// Endpoints (see DESIGN.md §8 and the README's Serving section):
//
//	GET  /v1/topk        current ranked rules (?limit=N)
//	GET  /v1/rules/{id}  one rule by 1-based rank, with explain counts
//	POST /v1/recommend   per-node suggestions or an RHS campaign
//	POST /v1/propagate   GR-influence class propagation
//	POST /v1/ingest      one atomic insert/retract batch
//	GET  /v1/events      SSE rule-drift stream (one event per batch)
//	GET  /v1/status      engine identity, ingest totals, worker fleet health
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"grminer"
	"grminer/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		data     = flag.String("data", "", "built-in dataset: toy | pokec | dblp")
		schemaF  = flag.String("schema", "", "schema file (with -nodes-file/-edges-file)")
		nodesF   = flag.String("nodes-file", "", "node attribute TSV")
		edgesF   = flag.String("edges-file", "", "edge TSV")
		nodes    = flag.Int("nodes", 20000, "synthetic dataset size (pokec)")
		deg      = flag.Float64("deg", 15, "synthetic average out-degree (pokec)")
		seed     = flag.Int64("seed", 1, "generator seed")
		minSupp  = flag.Int("minsupp", 50, "absolute minimum support")
		minScore = flag.Float64("minnhp", 0.5, "minimum score (minNhp)")
		k        = flag.Int("k", 20, "top-k (0 = unlimited)")
		metric   = flag.String("metric", "nhp", "ranking metric: nhp|conf|laplace|gain|piatetsky-shapiro|conviction|lift")
		dynamic  = flag.Bool("dynamic", true, "GRMiner(k): upgrade the pruning floor to the k-th best score")
		trivial  = flag.Bool("include-trivial", false, "also report trivial homophily GRs")
		workers  = flag.String("workers", "0", "parallel mining workers (0 = sequential unless -auto), or comma-separated shardd addresses (host:port,...) for one remote shard per worker")
		auto     = flag.Bool("auto", false, "auto-tune workers and descriptor caps from the input size")
		procs    = flag.Int("procs", 0, "CPU budget for -auto planning (0 = all cores)")
		shards   = flag.Int("shards", 0, "serve over N deterministic edge shards (0 = single store; may exceed the -workers address count to multiplex)")
		shardBy  = flag.String("shard-by", "src", "shard routing strategy: src | rhs")
		standby  = flag.String("standby", "", "comma-separated standby shardd addresses for failover replacement (remote shards only)")
		poolCap  = flag.Int("pool-cap", 0, "bound the tracked candidate pool (single-store only; exact via re-mine-on-underflow)")
		chkEvery = flag.Int("checkpoint-interval", grminer.DefaultCheckpointInterval, "checkpoint each shard's worker state every N acknowledged ingest batches, truncating its replay log so recovery replays at most N batches (0 = never checkpoint, full replay; sharded engines only)")
	)
	flag.Parse()

	strategy, err := grminer.ParseShardStrategy(*shardBy)
	if err != nil {
		fail(err)
	}
	parWorkers, remote, err := parseWorkersFlag(*workers)
	if err != nil {
		fail(err)
	}
	standbys, err := parseAddrList("-standby", *standby)
	if err != nil {
		fail(err)
	}
	if len(standbys) > 0 && len(remote) == 0 {
		fail(fmt.Errorf("-standby needs remote shards (-workers host:port,...)"))
	}
	g, err := loadGraph(*data, *schemaF, *nodesF, *edgesF, *nodes, *deg, *seed)
	if err != nil {
		fail(err)
	}
	m, err := grminer.MetricByName(*metric)
	if err != nil {
		fail(err)
	}
	cfg := grminer.EngineConfig{
		Mode: grminer.ModeIncremental,
		Options: grminer.Options{
			MinSupp:        *minSupp,
			MinScore:       *minScore,
			K:              *k,
			DynamicFloor:   *dynamic && *k > 0,
			Metric:         m,
			IncludeTrivial: *trivial,
			Parallelism:    parWorkers,
			PoolCap:        *poolCap,
		},
		Workers:  remote,
		Standbys: standbys,
		Auto:     *auto,
		Procs:    *procs,
	}
	if *chkEvery < 0 {
		fail(fmt.Errorf("-checkpoint-interval must be >= 0 (0 disables checkpointing)"))
	}
	if *shards > 0 || len(remote) > 0 {
		cfg.Shard = grminer.ShardOptions{Shards: *shards, Strategy: strategy,
			CheckpointInterval: checkpointInterval(*chkEvery)}
	}

	gs := g.Stats()
	log.Printf("network: %d nodes, %d edges, %d node attrs, %d edge attrs",
		gs.Nodes, gs.Edges, gs.NodeAttrs, gs.EdgeAttrs)
	start := time.Now()
	eng, err := grminer.Open(g, cfg)
	if err != nil {
		fail(err)
	}
	defer eng.Close()
	res := eng.Result()
	log.Printf("initial mine: |E|=%d, %d GRs tracked in top-%d (%v)",
		res.TotalEdges, len(res.TopK), eng.Options().K, time.Since(start).Round(time.Millisecond))

	srv := serve.New(eng, g)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	log.Printf("grminerd listening on %s (API v1)", ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case sig := <-stop:
		log.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}
}

// fail reports a startup error; a shard/worker contradiction names the
// flags involved.
func fail(err error) {
	var mismatch *grminer.ErrShardWorkerMismatch
	if errors.As(err, &mismatch) {
		fmt.Fprintf(os.Stderr, "grminerd: -shards %d leaves %d of the -workers addresses idle (raise -shards to at least %d to use every daemon, or drop -shards to default to one per worker)\n",
			mismatch.Shards, mismatch.Workers-mismatch.Shards, mismatch.Workers)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "grminerd:", err)
	os.Exit(1)
}

// checkpointInterval maps the -checkpoint-interval flag value onto
// ShardOptions.CheckpointInterval, where zero means "use the default" and
// disabling is spelled negative.
func checkpointInterval(flagValue int) int {
	if flagValue == 0 {
		return -1
	}
	return flagValue
}

// parseAddrList splits a comma-separated host:port list, validating each
// entry.
func parseAddrList(flagName, v string) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		if !strings.Contains(a, ":") {
			return nil, fmt.Errorf("%s address %q: want host:port", flagName, a)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// parseWorkersFlag splits the overloaded -workers value: a plain integer is
// the parallel miner's worker count, anything with a ':' is a comma-
// separated shardd address list for remote shards.
func parseWorkersFlag(v string) (parallelism int, remote []string, err error) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, nil, nil
	}
	if n, errInt := strconv.Atoi(v); errInt == nil {
		if n < 0 {
			return 0, nil, fmt.Errorf("-workers %d: negative worker count", n)
		}
		return n, nil, nil
	}
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			remote = append(remote, a)
		}
	}
	if len(remote) == 0 {
		return 0, nil, fmt.Errorf("-workers %q: want a worker count or host:port addresses", v)
	}
	for _, a := range remote {
		if !strings.Contains(a, ":") {
			return 0, nil, fmt.Errorf("-workers address %q: want host:port", a)
		}
	}
	return 0, remote, nil
}

func loadGraph(data, schemaF, nodesF, edgesF string, nodes int, deg float64, seed int64) (*grminer.Graph, error) {
	switch {
	case data == "toy":
		return grminer.ToyDating(), nil
	case data == "pokec":
		cfg := grminer.DefaultPokecConfig()
		cfg.Nodes = nodes
		cfg.AvgOutDegree = deg
		cfg.Seed = seed
		return grminer.Pokec(cfg), nil
	case data == "dblp":
		cfg := grminer.DefaultDBLPConfig()
		cfg.Seed = seed
		return grminer.DBLP(cfg), nil
	case data != "":
		return nil, fmt.Errorf("unknown dataset %q (want toy, pokec, or dblp)", data)
	case schemaF != "" && nodesF != "" && edgesF != "":
		return grminer.LoadFiles(schemaF, nodesF, edgesF)
	default:
		return nil, fmt.Errorf("need -data or all of -schema/-nodes-file/-edges-file (see -h)")
	}
}
