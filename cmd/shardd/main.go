// Command shardd is a grminer shard worker daemon: it holds shards of a
// sharded mining deployment and serves the offer/count/ingest protocol of
// internal/rpc to a coordinator (grminer -workers, grminer.Open, or the
// deprecated MineRemote/NewIncrementalRemote wrappers).
//
// Usage:
//
//	shardd -listen 127.0.0.1:9401 -shards 4
//
// -shards N multiplexes N independent worker slots behind the one process:
// the handshake advertises the capacity and the coordinator addresses each
// request to a slot, so a 16-shard layout can run on 4 daemons at 4 slots
// each (or on one daemon at 16).
//
// The daemon serves one coordinator session at a time; when a session ends
// all shard state is discarded and the next connection starts fresh, so a
// fleet of long-lived daemons can serve successive mining runs. The
// coordinator ships each shard's data (schema, node table, edge slice) at
// the start of every session — shardd needs no local data files.
//
// SIGTERM/SIGINT drain gracefully: the listener closes (no new sessions),
// the in-flight session runs until its coordinator disconnects, and shardd
// exits 0. A second signal aborts immediately with exit 1. See
// OPERATIONS.md for the drain-and-replace runbook.
//
// shardd exits non-zero on a malformed handshake or a version-mismatched
// peer: a daemon that a foreign or stale client talks to is a deployment
// error, and failing loudly beats serving wrong answers quietly. A peer
// that merely disappears — a coordinator crashing mid-dial or mid-session —
// only ends that session: the daemon logs it and accepts the next one, so
// one process loss never cascades through the fleet (DESIGN.md §9).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"grminer/internal/rpc"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:9401", "address to serve the shard-worker protocol on")
		shards = flag.Int("shards", 1, "worker slots to multiplex behind this process")
		quiet  = flag.Bool("quiet", false, "suppress per-session log lines")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "shardd: -shards must be at least 1")
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		os.Exit(1)
	}
	// The resolved address matters when -listen used port 0.
	fmt.Printf("shardd: protocol %s v%d listening on %s (%d slots)\n", rpc.Magic, rpc.Version, l.Addr(), *shards)

	logger := log.New(os.Stderr, "shardd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}

	// First signal: close the listener so no new session starts; the serve
	// loop finishes the in-flight session (the coordinator disconnects when
	// its run ends) and returns nil — a graceful drain. Second signal:
	// abort without waiting.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigc
		logger.Printf("draining: no new sessions; waiting for the in-flight session to end")
		l.Close()
		<-sigc
		logger.Printf("second signal: aborting")
		os.Exit(1)
	}()

	if err := rpc.ServeShards(l, *shards, logf); err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		os.Exit(1)
	}
}
