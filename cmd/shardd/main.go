// Command shardd is a grminer shard worker daemon: it holds one shard of a
// sharded mining deployment and serves the offer/count/ingest protocol of
// internal/rpc to a coordinator (grminer -workers, grminer.MineRemote, or
// grminer.NewIncrementalRemote).
//
// Usage:
//
//	shardd -listen 127.0.0.1:9401
//
// The daemon serves one coordinator session at a time; when a session ends
// the shard state is discarded and the next connection starts fresh, so a
// fleet of long-lived daemons can serve successive mining runs. The
// coordinator ships the shard's data (schema, node table, edge slice) at
// the start of every session — shardd needs no local data files.
//
// shardd exits non-zero on a malformed handshake or a version-mismatched
// peer: a daemon that a foreign or stale client talks to is a deployment
// error, and failing loudly beats serving wrong answers quietly.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"grminer/internal/rpc"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:9401", "address to serve the shard-worker protocol on")
		quiet  = flag.Bool("quiet", false, "suppress per-session log lines")
	)
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		os.Exit(1)
	}
	// The resolved address matters when -listen used port 0.
	fmt.Printf("shardd: protocol %s v%d listening on %s\n", rpc.Magic, rpc.Version, l.Addr())

	logger := log.New(os.Stderr, "shardd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	if err := rpc.Serve(l, logf); err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		os.Exit(1)
	}
}
