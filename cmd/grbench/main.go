// Command grbench regenerates the paper's tables and figures. DESIGN.md §5
// carries the experiment index (one entry per -exp name, implemented in
// internal/bench/experiments.go and internal/bench/scaling.go); experiments
// with machine-readable output drop BENCH_*.json snapshots next to their
// text reports.
//
// Usage:
//
//	grbench -exp all
//	grbench -exp fig4a -pokec-nodes 50000 -pokec-deg 15
//	grbench -exp tableIIb
//	grbench -exp fig4d -skip-baselines
//	grbench -exp scaling -procs 8 -auto
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"grminer/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	exp := flag.String("exp", "all", "experiment: "+strings.Join(append(bench.Names, "all"), " | "))
	flag.IntVar(&cfg.PokecNodes, "pokec-nodes", cfg.PokecNodes, "Pokec-like node count")
	flag.Float64Var(&cfg.PokecDeg, "pokec-deg", cfg.PokecDeg, "Pokec-like average out-degree")
	flag.IntVar(&cfg.DBLPAuthors, "dblp-authors", cfg.DBLPAuthors, "DBLP-like author count")
	flag.IntVar(&cfg.DBLPPairs, "dblp-pairs", cfg.DBLPPairs, "DBLP-like collaboration pairs")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.MinSupp, "minsupp", cfg.MinSupp, "default absolute minSupp for sweeps")
	flag.Float64Var(&cfg.MinNhp, "minnhp", cfg.MinNhp, "default minNhp for sweeps")
	flag.IntVar(&cfg.K, "k", cfg.K, "default top-k for sweeps")
	flag.BoolVar(&cfg.SkipBaselines, "skip-baselines", cfg.SkipBaselines, "omit BL1/BL2 from figure sweeps")
	flag.IntVar(&cfg.Procs, "procs", cfg.Procs, "worker-count cap for the scaling experiment (0 = all cores)")
	flag.BoolVar(&cfg.Auto, "auto", cfg.Auto, "add the AutoTune-planned point to the scaling experiment")
	flag.IntVar(&cfg.MaxShards, "shards", cfg.MaxShards, "shard-count cap for the sharding experiment (0 = 8)")
	flag.StringVar(&cfg.ShardBy, "shard-by", cfg.ShardBy, "restrict the sharding experiment to one strategy: src | rhs (empty = both)")
	flag.StringVar(&cfg.JSONDir, "json-dir", ".", "directory for BENCH_*.json snapshots (empty = skip)")
	flag.StringVar(&cfg.ServeAddr, "serve-addr", cfg.ServeAddr, "drive the serving experiment against an already-running grminerd at host:port (empty = in-process server)")
	flag.StringVar(&cfg.FailoverWorkers, "failover-workers", cfg.FailoverWorkers, "drive the failover experiment against already-running shardd daemons (host:port,... — empty = in-process killable daemons)")
	flag.StringVar(&cfg.FailoverStandby, "failover-standby", cfg.FailoverStandby, "standby shardd addresses for the external failover experiment (host:port,...)")
	flag.IntVar(&cfg.FailoverKillPid, "failover-kill-pid", cfg.FailoverKillPid, "pid of the external victim shardd (the first -failover-workers address) to SIGKILL mid-run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (captured after the run) to this file")
	flag.Parse()

	if err := run(*exp, cfg, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "grbench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg bench.Config, cpuprofile, memprofile string) error {
	if cfg.JSONDir != "" {
		if err := os.MkdirAll(cfg.JSONDir, 0o755); err != nil {
			return err
		}
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := bench.Run(exp, os.Stdout, cfg); err != nil {
		return err
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		// The allocs profile carries total allocation counts since process
		// start — the hot-path allocation evidence DESIGN.md §7 asks CI to
		// publish — alongside the post-GC live heap.
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return err
		}
	}
	return nil
}
