// grlint is the project's multichecker: project-specific static analyzers
// that prove the mining engine's cross-cutting invariants on every build
// (see internal/lint/*). It runs four ways:
//
//	go run ./cmd/grlint ./...              # standalone over module packages (incl. in-package tests)
//	go run ./cmd/grlint -dir path/to/pkg   # one bare directory (fixtures, seeded CI violations)
//	go run ./cmd/grlint -update-wire ./... # regenerate internal/rpc/wire_schema.json
//	go vet -vettool=$(go env GOPATH)/bin/grlint ./...  # under the vet driver (covers every test variant and build-tag combination vet builds)
//
// Diagnostics print as "file:line:col: message (analyzer)"; the exit code
// is 1 when any diagnostic fired, 2 on internal error. Suppress a finding
// with "//grlint:ignore <analyzer> <reason>" on its line or the line above
// — the reason is mandatory and checked.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"grminer/internal/lint/analysis"
	"grminer/internal/lint/atomicfloor"
	"grminer/internal/lint/deadedge"
	"grminer/internal/lint/metricsafety"
	"grminer/internal/lint/wire"
	"grminer/internal/lint/wirecompat"
)

var analyzers = []*analysis.Analyzer{
	atomicfloor.Analyzer,
	metricsafety.Analyzer,
	deadedge.Analyzer,
	wirecompat.Analyzer,
}

func main() {
	var (
		updateWire = flag.Bool("update-wire", false, "regenerate the wire schema snapshot from grlint:wire annotations")
		dir        = flag.String("dir", "", "analyze the Go files of one directory outside the package graph (fixtures)")
		tags       = flag.String("tags", "", "build tags for package loading")
		version    = flag.String("V", "", "print version and exit (go vet driver protocol)")
		printFlags = flag.Bool("flags", false, "print analyzer flags as JSON (go vet driver protocol)")
	)
	flag.Parse()

	if *version != "" {
		printVersion()
		return
	}
	if *printFlags {
		fmt.Println("[]")
		return
	}
	// A lone path/to/unit.cfg argument means the go vet driver is invoking
	// us per compilation unit.
	if args := flag.Args(); len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	switch {
	case *updateWire:
		if err := regenerateWire(patterns, *tags); err != nil {
			fmt.Fprintln(os.Stderr, "grlint:", err)
			os.Exit(2)
		}
	case *dir != "":
		os.Exit(runDir(*dir))
	default:
		os.Exit(runPatterns(patterns, *tags))
	}
}

// printVersion implements the -V=full handshake the go command uses to
// fingerprint vet tools for caching: name, version, and a content hash of
// the executable so a rebuilt grlint invalidates stale vet results.
func printVersion() {
	name := "grlint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:12])
}

func runPatterns(patterns []string, tags string) int {
	loader := analysis.NewLoader("")
	loader.Tests = true
	loader.BuildTags = tags
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grlint:", err)
		return 2
	}
	return runPackages(pkgs)
}

func runDir(dir string) int {
	loader := analysis.NewLoader("")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grlint:", err)
		return 2
	}
	if pkg.IllTyped {
		fmt.Fprintf(os.Stderr, "grlint: %s does not type-check: %s\n", dir, pkg.TypeErrors)
		return 2
	}
	return runPackages([]*analysis.Package{pkg})
}

type finding struct {
	pos      string
	line     int
	message  string
	analyzer string
}

func runPackages(pkgs []*analysis.Package) int {
	var findings []finding
	for _, pkg := range pkgs {
		if pkg.IllTyped {
			// External test packages can depend on test-variant exports the
			// compiled export data lacks; the vet-driver mode covers those
			// exactly, so standalone mode skips them loudly instead of
			// reporting phantom findings on half-typed syntax.
			fmt.Fprintf(os.Stderr, "grlint: skipping %s (type errors: %s)\n", pkg.Path, pkg.TypeErrors)
			continue
		}
		findings = append(findings, analyzePackage(pkg)...)
	}
	if len(findings) == 0 {
		return 0
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].message < findings[j].message
	})
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.pos, f.message, f.analyzer)
	}
	return 1
}

func analyzePackage(pkg *analysis.Package) []finding {
	var findings []finding
	for _, a := range analyzers {
		a := a
		pass := analysis.NewPass(a, pkg, nil)
		pass.Report = func(d analysis.Diagnostic) {
			posn := pkg.Fset.Position(d.Pos)
			findings = append(findings, finding{
				pos: posn.String(), line: posn.Line, message: d.Message, analyzer: a.Name,
			})
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "grlint: %s on %s: %v\n", a.Name, pkg.Path, err)
		}
	}
	findings = append(findings, checkIgnoreHygiene(pkg)...)
	return findings
}

// checkIgnoreHygiene enforces the suppression contract: every
// //grlint:ignore names a real analyzer and carries a reason.
func checkIgnoreHygiene(pkg *analysis.Package) []finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := analysis.ParseIgnore(c.Text)
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				switch {
				case name == "":
					findings = append(findings, finding{pos: posn.String(), line: posn.Line,
						message: "grlint:ignore must name an analyzer and a reason", analyzer: "grlint"})
				case !known[name]:
					findings = append(findings, finding{pos: posn.String(), line: posn.Line,
						message: fmt.Sprintf("grlint:ignore names unknown analyzer %q", name), analyzer: "grlint"})
				case reason == "":
					findings = append(findings, finding{pos: posn.String(), line: posn.Line,
						message: fmt.Sprintf("grlint:ignore %s needs a reason: suppressions must document why they are sound", name), analyzer: "grlint"})
				}
			}
		}
	}
	return findings
}

// regenerateWire rewrites the golden schema snapshot from the current
// grlint:wire annotations across the matched packages.
func regenerateWire(patterns []string, tags string) error {
	loader := analysis.NewLoader("")
	loader.BuildTags = tags
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	schema := make(wire.Schema)
	for _, pkg := range pkgs {
		for _, d := range wire.FromFiles(pkg.Files, pkg.Path) {
			if d.BadMark != "" {
				return fmt.Errorf("%s: malformed grlint:wire marker %q", pkg.Fset.Position(d.Pos), d.BadMark)
			}
			schema[d.Key] = d.Struct
		}
	}
	path, err := wire.FindSnapshot(".")
	if err != nil {
		return err
	}
	if err := wire.Save(path, schema); err != nil {
		return err
	}
	fmt.Printf("grlint: wrote %d wire structs to %s\n", len(schema), path)
	return nil
}
