package main

// The go vet driver protocol ("unitchecker" in x/tools terms): `go vet
// -vettool=grlint` invokes the tool once per compilation unit with a JSON
// config file describing the unit — source files, the import → export-data
// map the compiler produced, and output obligations. Running under vet
// buys exactly what standalone mode cannot cheaply reproduce: every test
// variant (internal and external test packages against their test-variant
// export data) and every -tags combination the build graph selects, with
// the go command's caching.
//
// grlint declares no cross-package facts, so the facts output (VetxOutput)
// is written empty; annotation-driven checks still see every declaration
// that matters because the engine's annotated symbols are package-local.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"grminer/internal/lint/analysis"
)

// vetConfig mirrors the config JSON the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "grlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Discharge the facts obligation first: the go command expects the
	// vetx file to exist even though grlint produces no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "grlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "grlint:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "grlint:", err)
		return 1
	}

	modpath := moduleRootPath(cfg.Dir)
	var findings []finding
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			TypesInfo:  info,
			ModulePath: modpath,
			Dir:        cfg.Dir,
		}
		pass.Report = func(d analysis.Diagnostic) {
			posn := fset.Position(d.Pos)
			findings = append(findings, finding{pos: posn.String(), message: d.Message, analyzer: a.Name})
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "grlint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
		}
	}
	findings = append(findings, checkIgnoreHygiene(&analysis.Package{Path: cfg.ImportPath, Fset: fset, Files: files})...)
	if len(findings) == 0 {
		return 0
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.pos, f.message, f.analyzer)
	}
	return 2
}

// moduleRootPath reads the module path from the go.mod above dir, giving
// vet-mode passes the same module-locality knowledge standalone mode gets
// from go list.
func moduleRootPath(dir string) string {
	d, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return strings.TrimSpace(rest)
				}
			}
			return ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
