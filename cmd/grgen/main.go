// Command grgen generates synthetic datasets (the Pokec-like and DBLP-like
// networks of DESIGN.md §3) and writes them as schema/nodes/edges files
// that grminer can load back.
//
// Usage:
//
//	grgen -data pokec -nodes 50000 -deg 15 -out ./pokec
//	grgen -data dblp -out ./dblp
package main

import (
	"flag"
	"fmt"
	"os"

	"grminer"
)

func main() {
	var (
		data    = flag.String("data", "pokec", "dataset: pokec | dblp | toy")
		nodes   = flag.Int("nodes", 20000, "node count (pokec)")
		deg     = flag.Float64("deg", 15, "average out-degree (pokec)")
		authors = flag.Int("authors", 28702, "author count (dblp; default is the paper's scale)")
		pairs   = flag.Int("pairs", 33416, "collaboration pairs (dblp)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "dataset", "output path prefix")
	)
	flag.Parse()

	var g *grminer.Graph
	switch *data {
	case "toy":
		g = grminer.ToyDating()
	case "pokec":
		cfg := grminer.DefaultPokecConfig()
		cfg.Nodes = *nodes
		cfg.AvgOutDegree = *deg
		cfg.Seed = *seed
		g = grminer.Pokec(cfg)
	case "dblp":
		cfg := grminer.DefaultDBLPConfig()
		cfg.Authors = *authors
		cfg.Pairs = *pairs
		cfg.Seed = *seed
		g = grminer.DBLP(cfg)
	default:
		fmt.Fprintf(os.Stderr, "grgen: unknown dataset %q\n", *data)
		os.Exit(1)
	}

	sp, np, ep := *out+".schema", *out+".nodes.tsv", *out+".edges.tsv"
	if err := grminer.SaveFiles(g, sp, np, ep); err != nil {
		fmt.Fprintln(os.Stderr, "grgen:", err)
		os.Exit(1)
	}
	st := g.Stats()
	fmt.Printf("wrote %s, %s, %s (%d nodes, %d edges)\n", sp, np, ep, st.Nodes, st.Edges)
}
